(* Correctness tests for the Conflict-Ordered Set implementations, exercised
   generically across coarse-grained, fine-grained and lock-free variants,
   on both the real-thread platform and the simulated platform. *)

open Psmr_cos
module RP = Psmr_platform.Real_platform

(* A readers-writers command, mirroring the paper's application model:
   writes conflict with everything, reads only with writes. *)
module Rw_cmd = struct
  type t = { idx : int; write : bool }

  let conflict a b = a.write || b.write

  (* Footprint view of the same relation: one shared variable. *)
  let footprint c = [ (0, c.write) ]
  let pp ppf c = Format.fprintf ppf "%s%d" (if c.write then "w" else "r") c.idx
end

let read idx = { Rw_cmd.idx; write = false }
let write idx = { Rw_cmd.idx; write = true }

let impls =
  [
    (Registry.Coarse, "coarse");
    (Registry.Fine, "fine");
    (Registry.Lockfree, "lockfree");
    (Registry.Striped 4, "striped-4");
    (Registry.Striped 16, "striped-16");
    (Registry.Indexed, "indexed");
  ]

(* The close-semantics tests additionally cover the sequential fifo
   baseline: shutdown behaviour must be uniform across every variant. *)
let impls_with_fifo = impls @ [ (Registry.Fifo, "fifo") ]

let impl_cos impl :
    (module Cos_intf.S with type cmd = Rw_cmd.t) =
  Registry.instantiate_keyed impl (module RP) (module Rw_cmd)

(* --- registry --- *)

let test_registry_parsing () =
  let check s expect =
    Alcotest.(check bool)
      (Printf.sprintf "parse %S" s)
      true
      (Registry.of_string s = expect)
  in
  check "coarse" (Some Registry.Coarse);
  check "coarse-grained" (Some Registry.Coarse);
  check "fine" (Some Registry.Fine);
  check "lock-free" (Some Registry.Lockfree);
  check "lockfree" (Some Registry.Lockfree);
  check "fifo" (Some Registry.Fifo);
  check "sequential" (Some Registry.Fifo);
  check "striped" (Some (Registry.Striped 16));
  check "striped-4" (Some (Registry.Striped 4));
  check "striped-0" None;
  check "striped-x" None;
  check "indexed" (Some Registry.Indexed);
  check "optimistic" None

let test_registry_roundtrip () =
  List.iter
    (fun impl ->
      Alcotest.(check bool)
        (Registry.to_string impl)
        true
        (Registry.of_string (Registry.to_string impl) = Some impl))
    (Registry.Fifo :: Registry.Striped 8 :: Registry.all)

let test_invalid_create_args () =
  let module S = (val impl_cos Registry.Coarse) in
  Alcotest.check_raises "zero max_size"
    (Invalid_argument "Coarse.create: max_size must be positive") (fun () ->
      ignore (S.create ~max_size:0 () : S.t))

(* --- deterministic single-thread behaviour --- *)

let test_insert_get_remove impl () =
  let module S = (val impl_cos impl) in
  let t = S.create () in
  for i = 0 to 9 do
    S.insert t (read i)
  done;
  Alcotest.(check int) "pending" 10 (S.pending t);
  let seen = Array.make 10 false in
  let handles =
    List.init 10 (fun _ ->
        match S.get t with
        | Some h ->
            let c = S.command h in
            Alcotest.(check bool) "not yet seen" false seen.(c.Rw_cmd.idx);
            seen.(c.Rw_cmd.idx) <- true;
            h
        | None -> Alcotest.fail "unexpected None from get")
  in
  List.iter (S.remove t) handles;
  Alcotest.(check int) "drained" 0 (S.pending t)

let test_writes_serialize impl () =
  let module S = (val impl_cos impl) in
  let t = S.create () in
  let n = 20 in
  for i = 0 to n - 1 do
    S.insert t (write i)
  done;
  (* All commands conflict, so only the oldest can ever be ready: gets must
     come back in exact insertion order, one at a time. *)
  for i = 0 to n - 1 do
    match S.get t with
    | Some h ->
        Alcotest.(check int) "in order" i (S.command h).Rw_cmd.idx;
        S.remove t h
    | None -> Alcotest.fail "unexpected None"
  done

let test_reads_independent impl () =
  let module S = (val impl_cos impl) in
  let t = S.create () in
  for i = 0 to 4 do
    S.insert t (read i)
  done;
  (* All five reads must be obtainable before any remove. *)
  let handles =
    List.init 5 (fun _ ->
        match S.get t with Some h -> h | None -> Alcotest.fail "None")
  in
  Alcotest.(check int) "five distinct" 5
    (List.sort_uniq compare (List.map (fun h -> (S.command h).Rw_cmd.idx) handles)
    |> List.length);
  List.iter (S.remove t) handles

let test_write_waits_for_reads impl () =
  let module S = (val impl_cos impl) in
  let t = S.create () in
  S.insert t (read 0);
  S.insert t (read 1);
  S.insert t (write 2);
  let h0 = Option.get (S.get t) in
  let h1 = Option.get (S.get t) in
  let got_write = Atomic.make false in
  let result = Atomic.make None in
  let th =
    Thread.create
      (fun () ->
        let h = S.get t in
        Atomic.set result (Option.map (fun h -> (S.command h).Rw_cmd.idx) h);
        Atomic.set got_write true;
        Option.iter (S.remove t) h)
      ()
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "write blocked behind reads" false (Atomic.get got_write);
  S.remove t h0;
  Thread.delay 0.05;
  Alcotest.(check bool) "write still blocked behind one read" false
    (Atomic.get got_write);
  S.remove t h1;
  Thread.join th;
  Alcotest.(check (option int)) "write released" (Some 2) (Atomic.get result)

let test_bounded_insert_blocks impl () =
  let module S = (val impl_cos impl) in
  let t = S.create ~max_size:2 () in
  S.insert t (read 0);
  S.insert t (read 1);
  let third_in = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        S.insert t (read 2);
        Atomic.set third_in true)
      ()
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "blocked while full" false (Atomic.get third_in);
  let h = Option.get (S.get t) in
  S.remove t h;
  Thread.join th;
  Alcotest.(check bool) "unblocked after remove" true (Atomic.get third_in);
  (* Drain the two remaining commands. *)
  let h = Option.get (S.get t) in
  S.remove t h;
  let h = Option.get (S.get t) in
  S.remove t h

let test_close_unblocks_getters impl () =
  let module S = (val impl_cos impl) in
  let t = S.create () in
  let results = Array.make 3 (Some 99) in
  let threads =
    List.init 3 (fun i ->
        Thread.create
          (fun () ->
            results.(i) <- Option.map (fun h -> (S.command h).Rw_cmd.idx) (S.get t))
          ())
  in
  Thread.delay 0.05;
  S.close t;
  List.iter Thread.join threads;
  Array.iter
    (fun r -> Alcotest.(check (option int)) "None after close" None r)
    results

let test_close_idempotent impl () =
  let module S = (val impl_cos impl) in
  let t = S.create () in
  S.close t;
  S.close t;
  Alcotest.(check (option int)) "get after close" None
    (Option.map (fun h -> (S.command h).Rw_cmd.idx) (S.get t))

(* Workers blocked in [get] on a non-empty structure when [close] arrives:
   every pending command must still execute, and afterwards every worker —
   including ones parked again in [get] — must observe [None].  Catches
   lost-wakeup bugs in the shutdown path (a single [signal] where a
   [broadcast] is needed). *)
let test_close_drains_blocked_getters impl () =
  let module S = (val impl_cos impl) in
  let t = S.create () in
  let executed = Atomic.make 0 in
  let nones = Atomic.make 0 in
  let workers = 3 in
  let worker () =
    let rec loop () =
      match S.get t with
      | Some h ->
          Atomic.incr executed;
          S.remove t h;
          loop ()
      | None -> Atomic.incr nones
    in
    loop ()
  in
  let threads = List.init workers (fun _ -> Thread.create worker ()) in
  (* Let the workers park on the empty, still-open structure first. *)
  Thread.delay 0.02;
  for i = 0 to 4 do
    S.insert t (write i)
  done;
  S.close t;
  List.iter Thread.join threads;
  Alcotest.(check int) "all pending commands executed" 5 (Atomic.get executed);
  Alcotest.(check int) "every worker observed None" workers (Atomic.get nones)

let test_dependency_chain impl () =
  let module S = (val impl_cos impl) in
  let t = S.create () in
  (* w0 <- r1, r2 <- w3: reads wait for w0; w3 waits for everyone. *)
  S.insert t (write 0);
  S.insert t (read 1);
  S.insert t (read 2);
  S.insert t (write 3);
  let h0 = Option.get (S.get t) in
  Alcotest.(check int) "w0 first" 0 (S.command h0).Rw_cmd.idx;
  S.remove t h0;
  let ha = Option.get (S.get t) in
  let hb = Option.get (S.get t) in
  let ids =
    List.sort compare [ (S.command ha).Rw_cmd.idx; (S.command hb).Rw_cmd.idx ]
  in
  Alcotest.(check (list int)) "both reads free" [ 1; 2 ] ids;
  S.remove t ha;
  S.remove t hb;
  let h3 = Option.get (S.get t) in
  Alcotest.(check int) "w3 last" 3 (S.command h3).Rw_cmd.idx;
  S.remove t h3

(* --- requeue: the fault-tolerance path for a worker that died between
   get and remove --- *)

let test_requeue_basic impl () =
  let module S = (val impl_cos impl) in
  let t = S.create () in
  S.insert t (write 0);
  S.insert t (write 1);
  let h0 = Option.get (S.get t) in
  Alcotest.(check int) "w0 reserved first" 0 (S.command h0).Rw_cmd.idx;
  S.requeue t h0;
  (* The command keeps its delivery position: it comes back before w1. *)
  (match S.get t with
  | Some h ->
      Alcotest.(check int) "w0 re-reserved" 0 (S.command h).Rw_cmd.idx;
      S.remove t h
  | None -> Alcotest.fail "requeued command not offered again");
  (match S.get t with
  | Some h ->
      Alcotest.(check int) "then w1" 1 (S.command h).Rw_cmd.idx;
      S.remove t h
  | None -> Alcotest.fail "w1 lost");
  Alcotest.(check int) "drained" 0 (S.pending t)

let test_requeue_invalid impl () =
  let module S = (val impl_cos impl) in
  let t = S.create () in
  S.insert t (write 0);
  let h = Option.get (S.get t) in
  S.remove t h;
  match S.requeue t h with
  | () -> Alcotest.fail "requeue after remove accepted"
  | exception Invalid_argument _ -> ()

let test_requeue_dependents impl () =
  (* A requeued command keeps its dependency edges: a write delivered after
     two reads stays blocked while one of the reads is requeued, and is
     released only once both reads are removed. *)
  let module S = (val impl_cos impl) in
  let t = S.create () in
  S.insert t (read 0);
  S.insert t (read 1);
  S.insert t (write 2);
  let ha = Option.get (S.get t) in
  let hb = Option.get (S.get t) in
  Alcotest.(check bool) "two reads in flight" true
    ((not (S.command ha).Rw_cmd.write) && not (S.command hb).Rw_cmd.write);
  S.requeue t hb;
  (match S.get t with
  | Some h ->
      Alcotest.(check bool) "requeued read, not the write" false
        (S.command h).Rw_cmd.write;
      S.remove t ha;
      S.remove t h
  | None -> Alcotest.fail "requeued read not offered again");
  match S.get t with
  | Some h ->
      Alcotest.(check int) "write released after both reads" 2
        (S.command h).Rw_cmd.idx;
      S.remove t h
  | None -> Alcotest.fail "write lost"

let test_requeue_then_close_drains impl () =
  (* close must drain a requeued command, not drop it. *)
  let module S = (val impl_cos impl) in
  let t = S.create () in
  S.insert t (write 0);
  let h = Option.get (S.get t) in
  S.requeue t h;
  S.close t;
  (match S.get t with
  | Some h' ->
      Alcotest.(check int) "requeued survives close" 0 (S.command h').Rw_cmd.idx;
      S.remove t h'
  | None -> Alcotest.fail "requeued command dropped by close");
  match S.get t with
  | None -> ()
  | Some _ -> Alcotest.fail "spurious command after drain"

(* --- worker crashes through the scheduler on the simulator: the
   supervisor requeues the reserved command and (with a respawn delay in
   the schedule) replaces the worker --- *)

let sim_scheduler_crash impl ~spec ~expect_crashed () =
  let open Psmr_sim in
  let e = Engine.create () in
  let (module SP) = Sim_platform.make e Costs.default in
  let (module S : Cos_intf.S with type cmd = Rw_cmd.t) =
    Registry.instantiate_keyed impl (module SP) (module Rw_cmd)
  in
  let module Sched = Psmr_sched.Scheduler.Make (SP) (S) in
  let plan =
    Psmr_fault.Plan.make
      ~now:(fun () -> Engine.now e)
      (Psmr_fault.Schedule.parse_exn spec)
  in
  let commands = 200 in
  let count = Array.make commands 0 in
  let finished = ref false in
  Psmr_fault.Plan.with_plan plan (fun () ->
      Engine.spawn e (fun () ->
          let execute (c : Rw_cmd.t) =
            SP.sleep 1e-4;
            count.(c.Rw_cmd.idx) <- count.(c.Rw_cmd.idx) + 1
          in
          let sched = Sched.start ~workers:4 ~execute () in
          let rng = Psmr_util.Rng.create ~seed:11L in
          for i = 0 to commands - 1 do
            Sched.submit sched
              { Rw_cmd.idx = i; write = Psmr_util.Rng.below_percent rng 20.0 }
          done;
          Sched.shutdown sched;
          Alcotest.(check int) "crashed workers" expect_crashed
            (Sched.crashed_workers sched);
          finished := true);
      Engine.run e);
  Alcotest.(check bool) "completed" true !finished;
  Array.iteri
    (fun i n ->
      if n <> 1 then Alcotest.failf "command %d executed %d times" i n)
    count;
  Alcotest.(check bool) "fault fired" true (Psmr_fault.Plan.injected plan >= 1)

let test_sim_scheduler_crash_respawn impl () =
  sim_scheduler_crash impl ~spec:"worker-crash=1@0.001+0.002" ~expect_crashed:1
    ()

let test_sim_scheduler_crash_stop impl () =
  (* No respawn: the pool shrinks to 3 workers but the run still drains,
     including the requeued command. *)
  sim_scheduler_crash impl ~spec:"worker-crash=1@0.001" ~expect_crashed:1 ()

(* --- concurrent stress through the scheduler runtime --- *)

(* Execute a random readers-writers workload on a real linked list through
   the full Algorithm-1 runtime and check it is equivalent to sequential
   execution in delivery order. *)
let stress_scheduler impl ~workers ~commands ~write_pct ~seed () =
  let module S = (val impl_cos impl) in
  let module Sched = Psmr_sched.Scheduler.Make (RP) (S) in
  let rng = Psmr_util.Rng.create ~seed in
  let universe = 200 in
  let cmds =
    Array.init commands (fun i ->
        let target = Psmr_util.Rng.int rng universe in
        let w = Psmr_util.Rng.below_percent rng write_pct in
        (i, (if w then Psmr_app.Linked_list.Add target
             else Psmr_app.Linked_list.Contains target)))
  in
  (* Sequential reference. *)
  let ref_list = Psmr_app.Linked_list.create ~initial_size:100 in
  let expected =
    Array.map (fun (_, c) -> Psmr_app.Linked_list.execute ref_list c) cmds
  in
  (* Parallel run.  The COS sees (index, write?) pairs; execution applies the
     real command and records the response under its index. *)
  let par_list = Psmr_app.Linked_list.create ~initial_size:100 in
  let responses = Array.make commands None in
  let exec_count = Array.make commands 0 in
  let writes_done = Atomic.make 0 in
  let write_rank = Array.make commands (-1) in
  let rank = ref 0 in
  Array.iter
    (fun (i, c) ->
      if Psmr_app.Linked_list.is_write c then begin
        write_rank.(i) <- !rank;
        incr rank
      end)
    cmds;
  let order_ok = Atomic.make true in
  let execute (c : Rw_cmd.t) =
    let i = c.Rw_cmd.idx in
    let _, real = cmds.(i) in
    if c.Rw_cmd.write then begin
      (* Writes are totally ordered by conflicts: each must see exactly its
         rank predecessors completed. *)
      if Atomic.get writes_done <> write_rank.(i) then Atomic.set order_ok false;
      responses.(i) <- Some (Psmr_app.Linked_list.execute par_list real);
      Atomic.incr writes_done
    end
    else responses.(i) <- Some (Psmr_app.Linked_list.execute par_list real);
    exec_count.(i) <- exec_count.(i) + 1
  in
  let sched = Sched.start ~workers ~execute () in
  Array.iter
    (fun (i, c) ->
      Sched.submit sched { Rw_cmd.idx = i; write = Psmr_app.Linked_list.is_write c })
    cmds;
  Sched.shutdown sched;
  Alcotest.(check int) "all executed" commands (Sched.executed sched);
  Array.iteri
    (fun i n -> if n <> 1 then Alcotest.failf "command %d executed %d times" i n)
    exec_count;
  Alcotest.(check bool) "writes in delivery order" true (Atomic.get order_ok);
  Array.iteri
    (fun i expect ->
      match responses.(i) with
      | Some got when got = expect -> ()
      | Some got ->
          Alcotest.failf "response %d: expected %b got %b" i expect got
      | None -> Alcotest.failf "missing response %d" i)
    expected;
  Alcotest.(check int)
    "same final size"
    (Psmr_app.Linked_list.size ref_list)
    (Psmr_app.Linked_list.size par_list)

(* --- the same data structures driven on the simulated platform --- *)

let test_sim_scheduler impl () =
  let open Psmr_sim in
  let e = Engine.create () in
  let (module SP) = Sim_platform.make e Costs.default in
  let (module S : Cos_intf.S with type cmd = Rw_cmd.t) =
    Registry.instantiate_keyed impl (module SP) (module Rw_cmd)
  in
  let module Sched = Psmr_sched.Scheduler.Make (SP) (S) in
  let executed_order = ref [] in
  let finished = ref false in
  Engine.spawn e (fun () ->
      let execute (c : Rw_cmd.t) =
        SP.sleep 1e-5;
        (* simulated execution cost *)
        executed_order := c.Rw_cmd.idx :: !executed_order
      in
      let sched = Sched.start ~workers:4 ~execute () in
      let rng = Psmr_util.Rng.create ~seed:11L in
      for i = 0 to 199 do
        Sched.submit sched
          { Rw_cmd.idx = i; write = Psmr_util.Rng.below_percent rng 20.0 }
      done;
      Sched.shutdown sched;
      finished := true);
  Engine.run e;
  Alcotest.(check bool) "completed" true !finished;
  Alcotest.(check int) "all executed" 200 (List.length !executed_order);
  Alcotest.(check bool) "virtual time advanced" true (Engine.now e > 0.0)

let test_sim_determinism impl () =
  let open Psmr_sim in
  let run () =
    let e = Engine.create () in
    let (module SP) = Sim_platform.make e Costs.default in
    let (module S : Cos_intf.S with type cmd = Rw_cmd.t) =
      Registry.instantiate_keyed impl (module SP) (module Rw_cmd)
    in
    let module Sched = Psmr_sched.Scheduler.Make (SP) (S) in
    Engine.spawn e (fun () ->
        let sched = Sched.start ~workers:8 ~execute:(fun _ -> SP.sleep 2e-5) () in
        let rng = Psmr_util.Rng.create ~seed:5L in
        for i = 0 to 499 do
          Sched.submit sched
            { Rw_cmd.idx = i; write = Psmr_util.Rng.below_percent rng 10.0 }
        done;
        Sched.shutdown sched);
    Engine.run e;
    Engine.now e
  in
  Alcotest.(check (float 0.0)) "bit-identical virtual time" (run ()) (run ())

(* --- property-based testing: equivalence to sequential execution over the
       per-key conflict relation of the KV store --- *)

let kv_equivalence impl =
  let name = Printf.sprintf "%s: parallel = sequential (kv)" (Registry.to_string impl) in
  QCheck.Test.make ~name ~count:30
    QCheck.(
      pair (int_range 1 6)
        (list_of_size Gen.(int_range 1 150) (pair (int_range 0 7) (option (int_range 0 100)))))
    (fun (workers, ops) ->
      let module KC = struct
        type t = int * Psmr_app.Kv_store.command

        let conflict (_, a) (_, b) = Psmr_app.Kv_store.conflict a b
        let footprint (_, c) = Psmr_app.Kv_store.footprint c
        let pp ppf (i, c) = Format.fprintf ppf "%d:%a" i Psmr_app.Kv_store.pp_command c
      end in
      let (module S : Cos_intf.S with type cmd = KC.t) =
        Registry.instantiate_keyed impl (module RP) (module KC)
      in
      let module Sched = Psmr_sched.Scheduler.Make (RP) (S) in
      let cmds =
        List.mapi
          (fun i (k, v) ->
            ( i,
              match v with
              | None -> Psmr_app.Kv_store.Get k
              | Some v -> Psmr_app.Kv_store.Put (k, v) ))
          ops
      in
      let n = List.length cmds in
      let ref_store = Psmr_app.Kv_store.create ~capacity:8 in
      let expected =
        List.map (fun (_, c) -> Psmr_app.Kv_store.execute ref_store c) cmds
        |> Array.of_list
      in
      let par_store = Psmr_app.Kv_store.create ~capacity:8 in
      let responses = Array.make n None in
      let execute ((i, c) : KC.t) =
        responses.(i) <- Some (Psmr_app.Kv_store.execute par_store c)
      in
      let sched = Sched.start ~workers ~execute () in
      List.iter (Sched.submit sched) cmds;
      Sched.shutdown sched;
      Array.for_all2
        (fun e r -> match r with Some r -> r = e | None -> false)
        expected responses)

(* --- direct check of the COS sequential specification (§3.3) ---

   Instrument get/remove with a global event log (ticketed by an atomic
   counter).  The spec says get may return c only when no conflicting c'
   inserted before c is still in the structure; hence for every conflicting
   pair (a inserted before b), remove(a) must precede get(b).  We log R(a)
   *before* invoking remove and G(b) *after* get returns, so a correct COS
   can never produce an inverted pair (no false positives). *)
let cos_spec_check impl ~workers ~commands ~write_pct ~seed () =
  let module S = (val impl_cos impl) in
  let rng = Psmr_util.Rng.create ~seed in
  let cmds =
    Array.init commands (fun i ->
        { Rw_cmd.idx = i; write = Psmr_util.Rng.below_percent rng write_pct })
  in
  let ticket = Atomic.make 0 in
  let got_at = Array.make commands max_int in
  let removed_at = Array.make commands max_int in
  let t = S.create () in
  let joined = Atomic.make 0 in
  let worker () =
    let rec loop () =
      match S.get t with
      | None -> Atomic.incr joined
      | Some h ->
          let c = S.command h in
          got_at.(c.Rw_cmd.idx) <- Atomic.fetch_and_add ticket 1;
          (* simulate a little execution time to widen races *)
          if c.Rw_cmd.idx land 7 = 0 then Thread.yield ();
          removed_at.(c.Rw_cmd.idx) <- Atomic.fetch_and_add ticket 1;
          S.remove t h;
          loop ()
    in
    loop ()
  in
  let threads = List.init workers (fun _ -> Thread.create worker ()) in
  Array.iter (S.insert t) cmds;
  (* Drain, then close. *)
  while S.pending t > 0 do
    Thread.yield ()
  done;
  S.close t;
  List.iter Thread.join threads;
  Alcotest.(check int) "workers joined" workers (Atomic.get joined);
  (* Every command got and removed exactly once (ticket assigned). *)
  Array.iteri
    (fun i g -> if g = max_int then Alcotest.failf "command %d never got" i)
    got_at;
  (* Conflict-order: for conflicting (a before b): remove(a) < get(b). *)
  for b = 0 to commands - 1 do
    for a = 0 to b - 1 do
      if Rw_cmd.conflict cmds.(a) cmds.(b) && removed_at.(a) >= got_at.(b) then
        Alcotest.failf
          "spec violation: %s%d (removed@%d) should precede %s%d (got@%d)"
          (if cmds.(a).Rw_cmd.write then "w" else "r")
          a removed_at.(a)
          (if cmds.(b).Rw_cmd.write then "w" else "r")
          b got_at.(b)
    done
  done

(* Property: on the simulator, with adversarially random execution durations
   (so completion order is scrambled arbitrarily), parallel execution through
   any COS still produces the responses of sequential delivery-order
   execution.  This explores interleavings that preemptive threads on one
   machine never would. *)
let sim_schedule_equivalence impl =
  let name =
    Printf.sprintf "%s: random-duration schedules = sequential (sim)"
      (Registry.to_string impl)
  in
  QCheck.Test.make ~name ~count:25
    QCheck.(
      triple (int_range 1 12)
        (list_of_size Gen.(int_range 1 120)
           (pair (int_range 0 5) (option (int_range 0 50))))
        (int_range 0 10_000))
    (fun (workers, ops, seed) ->
      let open Psmr_sim in
      let e = Engine.create () in
      let (module SP) = Sim_platform.make e Costs.default in
      let module KC = struct
        type t = int * Psmr_app.Kv_store.command

        let conflict (_, a) (_, b) = Psmr_app.Kv_store.conflict a b
        let footprint (_, c) = Psmr_app.Kv_store.footprint c
        let pp ppf (i, _) = Format.pp_print_int ppf i
      end in
      let (module S : Cos_intf.S with type cmd = KC.t) =
        Registry.instantiate_keyed impl (module SP) (module KC)
      in
      let module Sched = Psmr_sched.Scheduler.Make (SP) (S) in
      let cmds =
        List.mapi
          (fun i (k, v) ->
            ( i,
              match v with
              | None -> Psmr_app.Kv_store.Get k
              | Some v -> Psmr_app.Kv_store.Put (k, v) ))
          ops
      in
      let n = List.length cmds in
      let ref_store = Psmr_app.Kv_store.create ~capacity:6 in
      let expected =
        List.map (fun (_, c) -> Psmr_app.Kv_store.execute ref_store c) cmds
        |> Array.of_list
      in
      let par_store = Psmr_app.Kv_store.create ~capacity:6 in
      let responses = Array.make n None in
      let rng = Psmr_util.Rng.create ~seed:(Int64.of_int seed) in
      let execute ((i, c) : KC.t) =
        (* Random virtual execution time scrambles completion order. *)
        SP.sleep (Psmr_util.Rng.float rng 2e-4);
        responses.(i) <- Some (Psmr_app.Kv_store.execute par_store c)
      in
      Engine.spawn e (fun () ->
          let sched = Sched.start ~workers ~execute () in
          List.iter (Sched.submit sched) cmds;
          Sched.shutdown sched);
      Engine.run e;
      Array.for_all2
        (fun exp r -> match r with Some r -> r = exp | None -> false)
        expected responses)

(* Regression for the Algorithm-7 promotion race (see lockfree.ml header
   and EXPERIMENTS.md): the shrunk counterexample — [Put; Gets; Put] on one
   key with 3 workers — swept across many random virtual schedules.  Before
   the [Ins]-state fix, the trailing Put could execute while earlier Gets
   were still running, yielding responses inconsistent with delivery
   order. *)
let test_algorithm7_race_regression impl () =
  let open Psmr_sim in
  let cmds =
    [
      Psmr_app.Kv_store.Get 1;
      Get 1;
      Put (0, 0);
      Get 0;
      Get 0;
      Get 0;
      Get 0;
      Get 0;
      Put (0, 1);
      Get 0;
      Get 0;
      Get 0;
    ]
    |> List.mapi (fun i c -> (i, c))
  in
  let n = List.length cmds in
  let ref_store = Psmr_app.Kv_store.create ~capacity:4 in
  let expected =
    List.map (fun (_, c) -> Psmr_app.Kv_store.execute ref_store c) cmds
    |> Array.of_list
  in
  for seed = 0 to 499 do
    let e = Engine.create () in
    let (module SP) = Sim_platform.make e Costs.default in
    let module KC = struct
      type t = int * Psmr_app.Kv_store.command

      let conflict (_, a) (_, b) = Psmr_app.Kv_store.conflict a b
      let footprint (_, c) = Psmr_app.Kv_store.footprint c
      let pp ppf (i, _) = Format.pp_print_int ppf i
    end in
    let (module S : Cos_intf.S with type cmd = KC.t) =
      Registry.instantiate_keyed impl (module SP) (module KC)
    in
    let module Sched = Psmr_sched.Scheduler.Make (SP) (S) in
    let par_store = Psmr_app.Kv_store.create ~capacity:4 in
    let responses = Array.make n None in
    let rng = Psmr_util.Rng.create ~seed:(Int64.of_int (7725 + seed)) in
    let execute ((i, c) : KC.t) =
      SP.sleep (Psmr_util.Rng.float rng 1e-4);
      responses.(i) <- Some (Psmr_app.Kv_store.execute par_store c)
    in
    Engine.spawn e (fun () ->
        let sched = Sched.start ~workers:3 ~execute () in
        List.iter (Sched.submit sched) cmds;
        Sched.shutdown sched);
    Engine.run e;
    Array.iteri
      (fun i exp ->
        match responses.(i) with
        | Some got when got = exp -> ()
        | Some _ | None -> Alcotest.failf "seed %d: response %d wrong" seed i)
      expected
  done

(* --- batched insert --- *)

(* A batch larger than [max_size] must be chunked internally (a single
   space acquisition for the whole batch could never be satisfied) and
   still come out in delivery order. *)
let test_insert_batch_chunks impl () =
  let module S = (val impl_cos impl) in
  let t = S.create ~max_size:4 () in
  let n = 10 in
  let inserted = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        S.insert_batch t (Array.init n write);
        Atomic.set inserted true)
      ()
  in
  for i = 0 to n - 1 do
    let h = Option.get (S.get t) in
    Alcotest.(check int) "batch preserves delivery order" i
      (S.command h).Rw_cmd.idx;
    S.remove t h
  done;
  Thread.join th;
  Alcotest.(check bool) "batch insert completed" true (Atomic.get inserted);
  Alcotest.(check int) "drained" 0 (S.pending t)

(* --- close with more blocked getters than the old token constant --- *)

(* Regression: [close] must wake every blocked getter even when more than
   1024 of them are parked.  The wake-token count used to be a hard-coded
   1024; it is now derived from [max_size] + [worker_bound]. *)
let test_close_many_blocked_getters impl () =
  let open Psmr_sim in
  let e = Engine.create () in
  let (module SP) = Sim_platform.make e Costs.default in
  let (module S : Cos_intf.S with type cmd = Rw_cmd.t) =
    Registry.instantiate_keyed impl (module SP) (module Rw_cmd)
  in
  let getters = 1500 in
  let t = S.create ~max_size:2000 ~worker_bound:getters () in
  let nones = ref 0 in
  for _ = 1 to getters do
    Engine.spawn e (fun () ->
        match S.get t with
        | None -> incr nones
        | Some _ -> Alcotest.fail "unexpected command from empty structure")
  done;
  Engine.spawn e (fun () -> S.close t);
  Engine.run e;
  Alcotest.(check int) "every blocked getter woke with None" getters !nones

(* --- cross-implementation equivalence against the coarse reference: every
       variant must induce exactly the behaviour of the coarse monitor's
       pairwise scan relation on random keyed workloads.  For indexed this
       checks the footprint-derived relation; for fine/striped/lockfree the
       lock-coupling, segment and CAS machinery. --- *)

module Keyed_cmd = struct
  type t = { idx : int; key : int; write : bool }

  let conflict a b = a.key = b.key && (a.write || b.write)
  let footprint c = [ (c.key, c.write) ]

  let pp ppf c =
    Format.fprintf ppf "%s%d@%d" (if c.write then "w" else "r") c.idx c.key
end

let drain_order impl cmds =
  let (module S : Cos_intf.S with type cmd = Keyed_cmd.t) =
    Registry.instantiate_keyed impl (module RP) (module Keyed_cmd)
  in
  let n = Array.length cmds in
  let t = S.create ~max_size:(n + 1) () in
  Array.iter (S.insert t) cmds;
  let order = ref [] in
  for _ = 1 to n do
    match S.get t with
    | Some h ->
        order := (S.command h).Keyed_cmd.idx :: !order;
        S.remove t h
    | None -> Alcotest.fail "unexpected None while draining"
  done;
  S.close t;
  List.rev !order

(* One shared workload generator, one property per implementation. *)
let keyed_workload =
  QCheck.(list_of_size Gen.(int_range 0 60) (pair (int_range 0 5) bool))

let keyed_cmds ops =
  Array.of_list
    (List.mapi (fun idx (key, write) -> { Keyed_cmd.idx; key; write }) ops)

let coarse_equivalence (impl, label) =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s = coarse (same delivery, same single-threaded drain)"
         label)
    ~count:200 keyed_workload
    (fun ops ->
      let cmds = keyed_cmds ops in
      drain_order impl cmds = drain_order Registry.Coarse cmds)

let coarse_equivalence_impls =
  [
    (Registry.Indexed, "indexed");
    (Registry.Fine, "fine");
    (Registry.Striped 4, "striped-4");
    (Registry.Lockfree, "lockfree");
  ]

let per_impl name f =
  List.map
    (fun (impl, label) ->
      Alcotest.test_case (Printf.sprintf "%s [%s]" name label) `Quick (f impl))
    impls

let per_impl_all name f =
  List.map
    (fun (impl, label) ->
      Alcotest.test_case (Printf.sprintf "%s [%s]" name label) `Quick (f impl))
    impls_with_fifo

let () =
  let stress impl ~workers ~write_pct ~seed () =
    stress_scheduler impl ~workers ~commands:2000 ~write_pct ~seed ()
  in
  Alcotest.run "cos"
    [
      ( "registry",
        [
          Alcotest.test_case "parsing" `Quick test_registry_parsing;
          Alcotest.test_case "roundtrip" `Quick test_registry_roundtrip;
          Alcotest.test_case "invalid args" `Quick test_invalid_create_args;
        ] );
      ("insert-get-remove", per_impl "basic" test_insert_get_remove);
      ("conflict-order", per_impl "writes serialize" test_writes_serialize);
      ("independence", per_impl "reads independent" test_reads_independent);
      ("blocking", per_impl "write waits for reads" test_write_waits_for_reads);
      ("bounded", per_impl "insert blocks when full" test_bounded_insert_blocks);
      ( "shutdown",
        per_impl_all "close unblocks getters" test_close_unblocks_getters
        @ per_impl_all "close idempotent" test_close_idempotent
        @ per_impl_all "close drains blocked getters"
            test_close_drains_blocked_getters );
      ("dag", per_impl "dependency chain" test_dependency_chain);
      ( "requeue",
        per_impl_all "reserved command returns" test_requeue_basic
        @ per_impl_all "requeue after remove rejected" test_requeue_invalid
        @ per_impl "dependents kept" test_requeue_dependents
        @ per_impl_all "close drains requeued" test_requeue_then_close_drains );
      ( "worker-crash",
        per_impl "crash + respawn, exactly-once" test_sim_scheduler_crash_respawn
        @ per_impl "crash-stop, pool shrinks" test_sim_scheduler_crash_stop );
      ( "batch",
        per_impl_all "insert_batch chunks and keeps order"
          test_insert_batch_chunks );
      ( "close-tokens",
        per_impl "close wakes >1024 blocked getters"
          test_close_many_blocked_getters );
      ( "coarse-equivalence",
        List.map
          (fun p -> QCheck_alcotest.to_alcotest (coarse_equivalence p))
          coarse_equivalence_impls );
      ( "stress",
        per_impl "4 workers, 20% writes" (fun impl ->
            stress impl ~workers:4 ~write_pct:20.0 ~seed:1L)
        @ per_impl "8 workers, 0% writes" (fun impl ->
              stress impl ~workers:8 ~write_pct:0.0 ~seed:2L)
        @ per_impl "2 workers, 80% writes" (fun impl ->
              stress impl ~workers:2 ~write_pct:80.0 ~seed:3L)
        @ per_impl "6 workers, 50% writes" (fun impl ->
              stress impl ~workers:6 ~write_pct:50.0 ~seed:4L) );
      ( "spec",
        per_impl "conflict order spec, 6 workers 30% writes" (fun impl ->
            cos_spec_check impl ~workers:6 ~commands:600 ~write_pct:30.0
              ~seed:21L)
        @ per_impl "conflict order spec, 8 workers 5% writes" (fun impl ->
              cos_spec_check impl ~workers:8 ~commands:600 ~write_pct:5.0
                ~seed:22L) );
      ("sim-platform", per_impl "scheduler on sim" test_sim_scheduler);
      ("sim-determinism", per_impl "deterministic" test_sim_determinism);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          (List.map (fun (impl, _) -> kv_equivalence impl) impls) );
      ( "sim-properties",
        List.map QCheck_alcotest.to_alcotest
          (List.map (fun (impl, _) -> sim_schedule_equivalence impl) impls) );
      ( "regression",
        per_impl "algorithm-7 promotion race" test_algorithm7_race_regression );
    ]
