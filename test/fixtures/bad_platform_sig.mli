(* Interfaces are scanned too: a signature-level alias of a banned module,
   and a type reference through it. *)

module M = Mutex

val lock_it : M.t -> unit
