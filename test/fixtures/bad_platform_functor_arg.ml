(* Passing a banned module as a functor argument references it just as
   directly as calling into it (another no-trailing-dot evasion). *)

module Make (M : sig
  type t
end) =
struct
  type nonrec t = M.t
end

module H = Make (Mutex)
