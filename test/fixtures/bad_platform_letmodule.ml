(* Old-lint false negative #2: a local [let module] rebinding.  "Thread"
   without a trailing dot never matched the string scanner. *)

let spawn f =
  let module T = Thread in
  T.create f ()
