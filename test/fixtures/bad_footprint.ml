(* A hand-rolled conflict next to a footprint (analyzed as lib/app/...):
   the two encode the same relation twice and can silently diverge — the
   rule demands the shared derivation. *)

type command = Get of int | Put of int

let footprint = function Get k -> [ (k, false) ] | Put k -> [ (k, true) ]

let conflict a b =
  match (a, b) with
  | Put i, Put j -> i = j
  | Put i, Get j | Get j, Put i -> i = j
  | Get _, Get _ -> false
