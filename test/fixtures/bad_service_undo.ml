(* Nondeterminism hiding in the undo path: [execute] itself is clean, but
   the rollback surface ([execute_undoable]/[undo]) replays on every
   replica, so the Random in [undo_helper] and the wall-clock in
   [execute_undoable] are flagged exactly like execute-reachable code. *)

type t = int array

type command = Bump of int

type response = int

type undo = int * int

let execute (t : t) (Bump i) =
  t.(i) <- t.(i) + 1;
  t.(i)

let execute_undoable (t : t) (Bump i as c) =
  let prev = t.(i) in
  ignore (Sys.time () : float);
  (execute t c, (i, prev))

let undo_helper () = Random.int 2

let undo (t : t) ((i, prev) : undo) =
  ignore (undo_helper () : int);
  t.(i) <- prev
