(* Every violation below carries a [@psmr.allow] for its rule (expression
   attribute, binding attribute, and a floating file-level attribute), so
   the expected diagnostic set is empty.  Analyzed as lib/cos/... so both
   the platform and the obs-facade rules are in scope. *)

[@@@psmr.allow "obs-facade"]

let locked m = (Mutex.lock [@psmr.allow "platform-primitives"]) m

let now () = Unix.gettimeofday () [@@psmr.allow "platform-primitives"]

let count () = Psmr_obs.Metrics.counter "covered-by-floating-allow"
