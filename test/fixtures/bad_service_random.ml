(* Nondeterminism directly inside execute (analyzed as lib/app/...). *)

type t = int array

type command = Spin of int

type response = int

let execute (t : t) (Spin k) =
  let j = Random.int k in
  t.(j)
