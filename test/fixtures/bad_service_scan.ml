(* Nondeterminism hiding behind the kv range-read path: [execute] and
   the point ops are clean, but the file-level [scan] helper — an
   execute root because the Scan arm delegates to it — reads the
   wall-clock in its bounds check and its [scan_probe] helper samples
   Random.  Both replay on every replica, so both are flagged exactly
   like execute-reachable code. *)

type t = int option array

type command = Get of int | Scan of int * int

type response = Value of int option | Range of int option list

let scan_probe len = if Random.int 100 < 50 then len else len + 1

let scan (t : t) start len =
  let len = if Sys.time () > 0.0 then scan_probe len else len in
  List.init len (fun i -> t.(start + i))

let execute (t : t) = function
  | Get k -> Value t.(k)
  | Scan (start, len) -> Range (scan t start len)
