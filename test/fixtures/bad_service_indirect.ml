(* Nondeterminism reached through a helper: [execute] calls [helper] and
   [same], so the Hashtbl iteration and the physical equality are flagged;
   [snapshot]'s Marshal is NOT execute-reachable and stays legal. *)

type t = (int, int) Hashtbl.t

type command = Sum

type response = int

let helper (t : t) = Hashtbl.fold (fun _ v acc -> acc + v) t 0

let same x y = x == y

let execute (t : t) (_ : command) = if same t t then helper t else 0

let snapshot (t : t) = Marshal.to_string t []
