(* Parity with the old string scanner: plain qualified uses of platform
   primitives, wall-clock access, and a type reference. *)

let lock_it m = Mutex.lock m

let now () = Unix.gettimeofday ()

let nap () = Unix.sleepf 0.1

let t : Thread.t option = None
