(* Old-lint false negative #1: a module alias hides the banned head.  The
   string scanner only matched "Mutex." with the trailing dot, so neither
   the alias definition nor the use through it was flagged. *)

module M = Mutex

let lock_it h = M.lock h
