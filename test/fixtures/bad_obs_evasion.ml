(* Facade evasion in a scheduling layer (analyzed as lib/cos/...): direct
   registry/trace access is flagged whether written out or reached through
   a root alias; the Probe facade stays allowed. *)

module O = Psmr_obs

let count () = O.Metrics.counter "evil"

let direct () = Psmr_obs.Trace.emit ()

let ok () = Psmr_obs.Probe.lock_acquired ()
