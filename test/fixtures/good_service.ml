(* A clean service (analyzed as lib/app/...): derived conflict, fully
   deterministic execute, Marshal confined to snapshot/restore.  Expected
   diagnostics: none. *)

type t = int array

type command = Bump of int

type response = unit

let footprint (Bump k) = [ (k, true) ]

let conflict = Service_intf.conflict_of_footprint footprint

let bump (t : t) k = t.(k) <- t.(k) + 1

let execute (t : t) (Bump k) = bump t k

let snapshot (t : t) = Marshal.to_string t []

module Command = struct
  type nonrec t = command

  let conflict = conflict

  let footprint = footprint
end
