(* Old-lint false negative #3: the file defines its own [module Mutex], so
   the string scanner exempted the head for the whole file — but the later
   [open Stdlib] re-shadows the local module with the real one, and the
   use below genuinely hits the stdlib Mutex. *)

module Mutex = struct
  let lock () = ()
end

open Stdlib

let grab m = Mutex.lock m
