(* Stdlib-qualified paths canonicalize to the same root as bare ones. *)

let m = Stdlib.Mutex.create ()

let signal c = Stdlib.Condition.signal c
