(* Fault-facade evasion in a runtime layer (analyzed as lib/sched/...):
   arming plans from runtime code, hidden behind a let-module alias. *)

let arm () =
  let module F = Psmr_fault in
  F.Plan.arm ()

let ask () = Psmr_fault.Fault.should_crash ()
