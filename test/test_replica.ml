(* End-to-end tests of the replicated deployments: sequential and parallel
   SMR over atomic broadcast, on real threads and on the simulator. *)

module RP = Psmr_platform.Real_platform

(* --- KV service deployments on real threads --- *)

module KV_smr = Psmr_replica.Replica.Make (RP) (Psmr_app.Kv_store)

let fast_abcast =
  {
    Psmr_broadcast.Abcast.batch_max = 16;
    batch_delay = 1e-3;
    heartbeat_interval = 5e-3;
    election_timeout = 100e-3;
    checkpoint_interval = 64;
  }

(* execute-with-undo wrapper for the optimistic mode; harmless to set
   unconditionally since the other modes ignore it. *)
let kv_opt_execute s cmd =
  let resp, u = Psmr_app.Kv_store.execute_undoable s cmd in
  (resp, fun () -> Psmr_app.Kv_store.undo s u)

let kv_deployment ?(clients = 2) ?(mode = Psmr_replica.Replica.Sequential) () =
  let services = Array.make 3 None in
  let make_service id =
    let s = Psmr_app.Kv_store.create ~capacity:64 in
    services.(id) <- Some s;
    s
  in
  let cfg =
    {
      (KV_smr.Deployment.default_config ~make_service ()) with
      clients;
      mode;
      abcast = fast_abcast;
      tick_interval = 1e-3;
      client_timeout = 0.4;
      opt_execute = Some kv_opt_execute;
    }
  in
  let d = KV_smr.Deployment.create cfg in
  KV_smr.Deployment.start d;
  (d, services)

let test_kv_roundtrip mode () =
  let d, _ = kv_deployment ~mode () in
  let c = KV_smr.Deployment.client d 0 in
  Alcotest.(check bool) "put" true (KV_smr.call c (Put (1, 10)) = Some Stored);
  Alcotest.(check bool) "get" true
    (KV_smr.call c (Get 1) = Some (Value (Some 10)));
  Alcotest.(check bool) "get empty" true
    (KV_smr.call c (Get 2) = Some (Value None));
  KV_smr.Deployment.shutdown d

let test_kv_replicas_converge mode () =
  let d, services = kv_deployment ~mode () in
  let c0 = KV_smr.Deployment.client d 0 in
  let c1 = KV_smr.Deployment.client d 1 in
  let t0 = Thread.create (fun () ->
      for i = 0 to 19 do
        ignore (KV_smr.call c0 (Put (i mod 8, i)) : _ option)
      done) () in
  let t1 = Thread.create (fun () ->
      for i = 0 to 19 do
        ignore (KV_smr.call c1 (Put (8 + (i mod 8), 100 + i)) : _ option)
      done) () in
  Thread.join t0;
  Thread.join t1;
  (* One more command from each client; once answered, all prior commands
     are executed at the answering replica.  Give stragglers a moment, then
     compare full state across replicas. *)
  ignore (KV_smr.call c0 (Get 0) : _ option);
  Thread.delay 0.2;
  let dump = function
    | Some s -> List.init 64 (fun k -> Psmr_app.Kv_store.execute s (Get k))
    | None -> Alcotest.fail "service not created"
  in
  let s0 = dump services.(0) in
  Alcotest.(check bool) "replica 1 equals replica 0" true (dump services.(1) = s0);
  Alcotest.(check bool) "replica 2 equals replica 0" true (dump services.(2) = s0);
  KV_smr.Deployment.shutdown d

(* --- leader crash and failover --- *)

let test_leader_crash_failover mode () =
  let d, _ = kv_deployment ~clients:1 ~mode () in
  let c = KV_smr.Deployment.client d 0 in
  Alcotest.(check bool) "before crash" true
    (KV_smr.call c (Put (0, 1)) = Some Stored);
  KV_smr.Deployment.crash_replica d 0;
  (* The next calls must eventually succeed via the new leader. *)
  Alcotest.(check bool) "after crash: write" true
    (KV_smr.call c (Put (1, 2)) = Some Stored);
  Alcotest.(check bool) "after crash: read" true
    (KV_smr.call c (Get 1) = Some (Value (Some 2)));
  Alcotest.(check bool) "survivors installed a newer view" true
    (KV_smr.Deployment.replica_view d 1 > 0
    && KV_smr.Deployment.replica_view d 1 = KV_smr.Deployment.replica_view d 2);
  KV_smr.Deployment.shutdown d

(* --- at-most-once semantics under retries --- *)

module Bank_smr = Psmr_replica.Replica.Make (RP) (Psmr_app.Bank)

let test_exactly_once_deposits () =
  (* Aggressive client timeout forces spurious retries; deposits must still
     be applied exactly once each. *)
  let services = Array.make 3 None in
  let make_service id =
    let s = Psmr_app.Bank.create ~accounts:4 ~initial_balance:0 in
    services.(id) <- Some s;
    s
  in
  let cfg =
    {
      (Bank_smr.Deployment.default_config ~make_service ()) with
      clients = 2;
      mode = Parallel { impl = Psmr_cos.Registry.Lockfree; workers = 2 };
      abcast = fast_abcast;
      tick_interval = 1e-3;
      client_timeout = 0.02 (* small: retries will happen *);
    }
  in
  let d = Bank_smr.Deployment.create cfg in
  Bank_smr.Deployment.start d;
  let deposits_per_client = 25 in
  let worker ci =
    let c = Bank_smr.Deployment.client d ci in
    fun () ->
      for _ = 1 to deposits_per_client do
        ignore (Bank_smr.call c (Deposit (ci, 1)) : _ option)
      done;
      (* Retries of the last request may still be in flight; settle. *)
      ignore (Bank_smr.call c (Balance ci) : _ option)
  in
  let t0 = Thread.create (worker 0) () in
  let t1 = Thread.create (worker 1) () in
  Thread.join t0;
  Thread.join t1;
  Thread.delay 0.3;
  let check_replica i =
    match services.(i) with
    | Some s ->
        Alcotest.(check int)
          (Printf.sprintf "replica %d total (exactly-once)" i)
          (2 * deposits_per_client)
          (Psmr_app.Bank.total s)
    | None -> Alcotest.fail "missing service"
  in
  check_replica 0;
  check_replica 1;
  check_replica 2;
  Bank_smr.Deployment.shutdown d

(* --- the same deployment stack under the simulator --- *)

let test_sim_deployment () =
  let open Psmr_sim in
  let engine = Engine.create () in
  let (module SP) = Sim_platform.make engine Costs.default in
  let module SMR = Psmr_replica.Replica.Make (SP) (Psmr_app.Kv_store) in
  let responses = ref [] in
  let cfg =
    {
      (SMR.Deployment.default_config ~make_service:(fun _ ->
           Psmr_app.Kv_store.create ~capacity:64)
         ()) with
      clients = 4;
      mode = Parallel { impl = Psmr_cos.Registry.Lockfree; workers = 4 };
      abcast = fast_abcast;
      tick_interval = 1e-3;
      client_timeout = 0.4;
      latency = (fun ~src:_ ~dst:_ -> 60e-6);
    }
  in
  let d = SMR.Deployment.create cfg in
  Engine.spawn engine (fun () ->
      SMR.Deployment.start d;
      for ci = 0 to 3 do
        SP.spawn (fun () ->
            let c = SMR.Deployment.client d ci in
            for i = 0 to 24 do
              match SMR.call c (Put ((ci * 16) + (i mod 16), i)) with
              | Some Stored -> responses := `Ok :: !responses
              | Some _ | None -> responses := `Bad :: !responses
            done)
      done);
  Engine.run ~until:5.0 engine;
  Alcotest.(check int) "all calls answered" 100 (List.length !responses);
  Alcotest.(check bool) "all stored" true
    (List.for_all (fun r -> r = `Ok) !responses);
  Alcotest.(check bool) "virtual time sane" true (Engine.now engine <= 5.0)

let test_state_transfer_after_truncation () =
  (* Partition replica 2 away from its peers' traffic while the log is being
     truncated aggressively; after healing, it can no longer catch up from
     logs (gap beyond every base) so it must recover through a service
     snapshot, and end up with the same state. *)
  let open Psmr_sim in
  let engine = Engine.create () in
  (* Zero-cost atomic reads let the test inspect counters after the run. *)
  let (module SP) =
    Sim_platform.make engine { Costs.default with atomic_read = 0.0 }
  in
  let module SMR = Psmr_replica.Replica.Make (SP) (Psmr_app.Kv_store) in
  let services = Array.make 3 None in
  let cfg =
    {
      (SMR.Deployment.default_config ~make_service:(fun id ->
           let s = Psmr_app.Kv_store.create ~capacity:16 in
           services.(id) <- Some s;
           s)
         ()) with
      clients = 1;
      mode = Sequential;
      abcast = { fast_abcast with checkpoint_interval = 4; batch_max = 4 };
      tick_interval = 1e-3;
      client_timeout = 0.3;
      latency = (fun ~src:_ ~dst:_ -> 1e-4);
    }
  in
  let d = SMR.Deployment.create cfg in
  let net = SMR.Deployment.network d in
  let client_done = ref false in
  Engine.spawn engine (fun () ->
      SMR.Deployment.start d;
      SP.spawn (fun () ->
          let c = SMR.Deployment.client d 0 in
          for i = 0 to 199 do
            ignore (SMR.call c (Put (i mod 16, i)) : _ option)
          done;
          client_done := true));
  (* Cut everything into replica 2 between t=0.2 and t=1.2. *)
  Engine.spawn engine ~delay:0.2 (fun () ->
      SMR.Net.set_link_filter net (fun ~src:_ ~dst -> dst <> 2));
  Engine.spawn engine ~delay:1.2 (fun () -> SMR.Net.heal net);
  Engine.run ~until:8.0 engine;
  Alcotest.(check bool) "client finished" true !client_done;
  let dump = function
    | Some s -> List.init 16 (fun k -> Psmr_app.Kv_store.execute s (Get k))
    | None -> Alcotest.fail "service missing"
  in
  (* Let replica 2 finish catching up within the run window; states must
     converge. *)
  let s0 = dump services.(0) in
  Alcotest.(check bool) "replica 1 converged" true (dump services.(1) = s0);
  Alcotest.(check bool) "replica 2 converged via state transfer" true
    (dump services.(2) = s0);
  (* Commands skipped over by the snapshot were never individually delivered
     at replica 2 — proof the recovery went through state transfer rather
     than log replay. *)
  Alcotest.(check bool) "snapshot skipped deliveries" true
    (SMR.Deployment.replica_delivered d 2 < SMR.Deployment.replica_delivered d 0)

let test_sim_deployment_deterministic () =
  let open Psmr_sim in
  let run () =
    let engine = Engine.create () in
    let (module SP) = Sim_platform.make engine Costs.default in
    let module SMR = Psmr_replica.Replica.Make (SP) (Psmr_app.Kv_store) in
    let finished = ref 0.0 in
    let cfg =
      {
        (SMR.Deployment.default_config ~make_service:(fun _ ->
             Psmr_app.Kv_store.create ~capacity:16)
           ()) with
        clients = 2;
        mode = Parallel { impl = Psmr_cos.Registry.Coarse; workers = 2 };
        abcast = fast_abcast;
        latency = (fun ~src:_ ~dst:_ -> 80e-6);
      }
    in
    let d = SMR.Deployment.create cfg in
    Engine.spawn engine (fun () ->
        SMR.Deployment.start d;
        for ci = 0 to 1 do
          SP.spawn (fun () ->
              let c = SMR.Deployment.client d ci in
              for i = 0 to 9 do
                ignore (SMR.call c (Put (i, i)) : _ option)
              done;
              finished := SP.now ())
        done);
    Engine.run ~until:5.0 engine;
    !finished
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "finished" true (a > 0.0);
  Alcotest.(check (float 0.0)) "bit-identical completion time" a b

let () =
  let m_seq = Psmr_replica.Replica.Sequential in
  let m_par impl =
    Psmr_replica.Replica.Parallel { impl; workers = 3 }
  in
  let m_early = Psmr_replica.Replica.Parallel_early { workers = 3; classes = None } in
  let m_early_opt =
    Psmr_replica.Replica.Parallel_early_opt { workers = 3; classes = None }
  in
  Alcotest.run "replica"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "sequential" `Quick (test_kv_roundtrip m_seq);
          Alcotest.test_case "coarse" `Quick
            (test_kv_roundtrip (m_par Psmr_cos.Registry.Coarse));
          Alcotest.test_case "fine" `Quick
            (test_kv_roundtrip (m_par Psmr_cos.Registry.Fine));
          Alcotest.test_case "lockfree" `Quick
            (test_kv_roundtrip (m_par Psmr_cos.Registry.Lockfree));
          Alcotest.test_case "early" `Quick (test_kv_roundtrip m_early);
          Alcotest.test_case "early-opt" `Quick (test_kv_roundtrip m_early_opt);
        ] );
      ( "convergence",
        [
          Alcotest.test_case "sequential" `Quick (test_kv_replicas_converge m_seq);
          Alcotest.test_case "lockfree parallel" `Quick
            (test_kv_replicas_converge (m_par Psmr_cos.Registry.Lockfree));
          Alcotest.test_case "early" `Quick (test_kv_replicas_converge m_early);
          Alcotest.test_case "early-opt" `Quick
            (test_kv_replicas_converge m_early_opt);
        ] );
      ( "failover",
        [
          Alcotest.test_case "sequential" `Quick (test_leader_crash_failover m_seq);
          Alcotest.test_case "lockfree parallel" `Quick
            (test_leader_crash_failover (m_par Psmr_cos.Registry.Lockfree));
        ] );
      ( "at-most-once",
        [ Alcotest.test_case "deposits under retries" `Quick test_exactly_once_deposits ] );
      ( "simulated",
        [
          Alcotest.test_case "full deployment on sim" `Quick test_sim_deployment;
          Alcotest.test_case "deterministic" `Quick test_sim_deployment_deterministic;
          Alcotest.test_case "state transfer after truncation" `Quick
            test_state_transfer_after_truncation;
        ] );
    ]
