(* Tests for the early (queue-dispatch) scheduler: the related-work baseline
   architecture where scheduling decisions happen at delivery time. *)

module RP = Psmr_platform.Real_platform

module Rw = struct
  type t = { idx : int; write : bool }

  let is_write c = c.write
  let pp ppf c = Format.fprintf ppf "%s%d" (if c.write then "w" else "r") c.idx
end

module E = Psmr_sched.Early.Make (RP) (Rw)

let test_reads_parallel_writes_exclusive () =
  let inside = Atomic.make 0 in
  let write_overlap = Atomic.make false in
  let peak_reads = Atomic.make 0 in
  let execute (c : Rw.t) =
    let now_inside = 1 + Atomic.fetch_and_add inside 1 in
    if c.write && now_inside > 1 then Atomic.set write_overlap true;
    if not c.write then begin
      let rec bump () =
        let cur = Atomic.get peak_reads in
        if now_inside > cur && not (Atomic.compare_and_set peak_reads cur now_inside)
        then bump ()
      in
      bump ()
    end;
    Thread.yield ();
    Atomic.decr inside
  in
  let sched = E.start ~workers:4 ~execute () in
  let rng = Psmr_util.Rng.create ~seed:31L in
  for i = 0 to 999 do
    E.submit sched { Rw.idx = i; write = Psmr_util.Rng.below_percent rng 10.0 }
  done;
  E.shutdown sched;
  Alcotest.(check int) "all executed" 1000 (E.executed sched);
  Alcotest.(check bool) "writes ran alone" false (Atomic.get write_overlap)

let test_equivalent_to_sequential () =
  (* Execute a real linked-list workload and compare responses with
     sequential delivery-order execution (same check as for the COS). *)
  let commands = 1500 in
  let rng = Psmr_util.Rng.create ~seed:32L in
  let cmds =
    Array.init commands (fun i ->
        let target = Psmr_util.Rng.int rng 200 in
        ( i,
          if Psmr_util.Rng.below_percent rng 25.0 then
            Psmr_app.Linked_list.Add target
          else Psmr_app.Linked_list.Contains target ))
  in
  let ref_list = Psmr_app.Linked_list.create ~initial_size:100 in
  let expected =
    Array.map (fun (_, c) -> Psmr_app.Linked_list.execute ref_list c) cmds
  in
  let par_list = Psmr_app.Linked_list.create ~initial_size:100 in
  let responses = Array.make commands None in
  let execute (c : Rw.t) =
    let _, real = cmds.(c.Rw.idx) in
    responses.(c.Rw.idx) <- Some (Psmr_app.Linked_list.execute par_list real)
  in
  let sched = E.start ~workers:6 ~execute () in
  Array.iter
    (fun (i, c) ->
      E.submit sched { Rw.idx = i; write = Psmr_app.Linked_list.is_write c })
    cmds;
  E.shutdown sched;
  Array.iteri
    (fun i exp ->
      match responses.(i) with
      | Some got when got = exp -> ()
      | Some got -> Alcotest.failf "response %d: expected %b got %b" i exp got
      | None -> Alcotest.failf "missing response %d" i)
    expected;
  Alcotest.(check int) "final size" (Psmr_app.Linked_list.size ref_list)
    (Psmr_app.Linked_list.size par_list)

let test_single_worker_sequential () =
  let order = ref [] in
  let execute (c : Rw.t) = order := c.Rw.idx :: !order in
  let sched = E.start ~workers:1 ~execute () in
  for i = 0 to 49 do
    E.submit sched { Rw.idx = i; write = i mod 3 = 0 }
  done;
  E.shutdown sched;
  Alcotest.(check (list int)) "delivery order" (List.init 50 Fun.id)
    (List.rev !order)

let test_all_writes_totally_ordered () =
  let last = Atomic.make (-1) in
  let ok = Atomic.make true in
  let execute (c : Rw.t) =
    if Atomic.exchange last c.Rw.idx >= c.Rw.idx then Atomic.set ok false
  in
  let sched = E.start ~workers:8 ~execute () in
  for i = 0 to 299 do
    E.submit sched { Rw.idx = i; write = true }
  done;
  E.shutdown sched;
  Alcotest.(check bool) "monotone execution order" true (Atomic.get ok)

let test_on_sim_deterministic () =
  let open Psmr_sim in
  let run () =
    let e = Engine.create () in
    let (module SP) = Sim_platform.make e Costs.default in
    let module SE = Psmr_sched.Early.Make (SP) (Rw) in
    let executed_at = ref 0.0 in
    Engine.spawn e (fun () ->
        let sched = SE.start ~workers:8 ~execute:(fun _ -> SP.sleep 1e-5) () in
        let rng = Psmr_util.Rng.create ~seed:33L in
        for i = 0 to 499 do
          SE.submit sched
            { Rw.idx = i; write = Psmr_util.Rng.below_percent rng 15.0 }
        done;
        SE.shutdown sched;
        executed_at := SP.now ());
    Engine.run e;
    !executed_at
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "ran" true (a > 0.0);
  Alcotest.(check (float 0.0)) "deterministic" a b

(* ====================================================================== *)
(* lib/early: the class-map dispatch subsystem (Psmr_early).              *)
(* ====================================================================== *)

module CM = Psmr_early.Class_map

(* Footprint-carrying commands for the dispatcher: conflict iff a shared
   key with at least one writer (the KEYED_COMMAND contract). *)
module Fc = struct
  type t = { idx : int; fp : (int * bool) list }

  let footprint c = c.fp

  let conflict a b =
    List.exists
      (fun (k, w) -> List.exists (fun (k', w') -> k = k' && (w || w')) b.fp)
      a.fp

  let pp ppf c = Format.fprintf ppf "#%d" c.idx
end

module D = Psmr_early.Dispatch.Make (RP) (Fc)

(* --- class map --- *)

let test_class_map_shape () =
  let cm = CM.create ~classes:2 ~workers:5 () in
  Alcotest.(check int) "classes" 2 (CM.classes cm);
  Alcotest.(check int) "workers" 5 (CM.workers cm);
  Alcotest.(check (array int)) "class 0 members" [| 1; 3; 5 |]
    (CM.members_of_class cm 0);
  Alcotest.(check (array int)) "class 1 members" [| 2; 4 |]
    (CM.members_of_class cm 1);
  Alcotest.(check int) "key 7 -> class 1" 1 (CM.class_of_key cm 7);
  Alcotest.(check int) "key 6 -> class 0" 0 (CM.class_of_key cm 6);
  (* More classes than workers are clamped: a class needs a worker. *)
  let clamped = CM.create ~classes:9 ~workers:3 () in
  Alcotest.(check int) "clamped classes" 3 (CM.classes clamped);
  (* Default: one class per worker. *)
  let default = CM.create ~workers:4 () in
  Alcotest.(check int) "default classes" 4 (CM.classes default)

let test_class_map_plans () =
  (* classes = workers: every single-key command is a Direct fast path. *)
  let cm = CM.create ~workers:4 () in
  (match CM.plan cm [ (0, true) ] with
  | CM.Direct { worker } -> Alcotest.(check int) "w(key 0)" 1 worker
  | p -> Alcotest.failf "expected Direct, got %a" CM.pp_plan p);
  (match CM.plan cm [ (5, true) ] with
  | CM.Direct { worker } -> Alcotest.(check int) "w(key 5)" 2 worker
  | p -> Alcotest.failf "expected Direct, got %a" CM.pp_plan p);
  (* Cross-class write: every involved class's members, smallest id
     designated. *)
  (match CM.plan cm [ (0, true); (2, true) ] with
  | CM.Rendezvous { members; designated } ->
      Alcotest.(check (array int)) "members" [| 1; 3 |] members;
      Alcotest.(check int) "designated" 1 designated
  | p -> Alcotest.failf "expected Rendezvous, got %a" CM.pp_plan p);
  (* Coarser map: a write covers the whole class. *)
  let cm2 = CM.create ~classes:2 ~workers:4 () in
  (match CM.plan cm2 [ (0, true) ] with
  | CM.Rendezvous { members; designated } ->
      Alcotest.(check (array int)) "class write members" [| 1; 3 |] members;
      Alcotest.(check int) "class write designated" 1 designated
  | p -> Alcotest.failf "expected Rendezvous, got %a" CM.pp_plan p);
  (* A read takes one round-robin representative of the class. *)
  let rep () =
    match CM.plan cm2 [ (0, false) ] with
    | CM.Direct { worker } -> worker
    | p -> Alcotest.failf "expected Direct read, got %a" CM.pp_plan p
  in
  let a = rep () and b = rep () and c = rep () in
  Alcotest.(check (list int)) "reads rotate the class" [ 3; 1; 3 ] [ a; b; c ];
  (* Empty footprint: global round-robin across all workers. *)
  let free () =
    match CM.plan cm2 [] with
    | CM.Direct { worker } -> worker
    | p -> Alcotest.failf "expected Direct free, got %a" CM.pp_plan p
  in
  let ws = List.init 4 (fun _ -> free ()) in
  Alcotest.(check (list int)) "free commands rotate all workers" [ 2; 3; 4; 1 ]
    ws

(* --- barrier --- *)

let test_barrier_rendezvous () =
  let module B = Psmr_early.Barrier.Make (RP) in
  let module L = Psmr_platform.Latch.Make (RP) in
  let b = B.create ~size:3 ~designated:2 in
  let executes = Atomic.make 0 and dones = Atomic.make 0 in
  let l = L.create 3 in
  for w = 1 to 3 do
    RP.spawn ~name:(Printf.sprintf "b%d" w) (fun () ->
        (match B.arrive b ~worker:w with
        | `Execute ->
            Atomic.incr executes;
            B.complete b
        | `Done -> Atomic.incr dones);
        L.count_down l)
  done;
  L.wait l;
  Alcotest.(check int) "one executor" 1 (Atomic.get executes);
  Alcotest.(check int) "two passengers" 2 (Atomic.get dones);
  Alcotest.(check bool) "completed" true (B.completed b);
  Alcotest.check_raises "size < 2 rejected"
    (Invalid_argument "Barrier.create: size must be >= 2") (fun () ->
      ignore (B.create ~size:1 ~designated:1))

(* --- conservative dispatch --- *)

let test_dispatch_rw_one_class () =
  (* classes = 1 makes the keyed dispatcher a readers-writers scheduler:
     writes rendezvous every worker, reads fan out round-robin. *)
  let inside = Atomic.make 0 in
  let write_overlap = Atomic.make false in
  let execute (c : Fc.t) =
    let now_inside = 1 + Atomic.fetch_and_add inside 1 in
    if List.exists snd c.fp && now_inside > 1 then
      Atomic.set write_overlap true;
    Thread.yield ();
    Atomic.decr inside
  in
  let d = D.start_full ~classes:1 ~workers:4 ~execute () in
  let rng = Psmr_util.Rng.create ~seed:34L in
  let writes = ref 0 in
  for i = 0 to 799 do
    let w = Psmr_util.Rng.below_percent rng 10.0 in
    if w then incr writes;
    D.submit d { Fc.idx = i; fp = [ (0, w) ] }
  done;
  D.shutdown d;
  Alcotest.(check int) "all executed" 800 (D.executed d);
  Alcotest.(check bool) "writes ran alone" false (Atomic.get write_overlap);
  Alcotest.(check int) "writes rendezvous" !writes (D.rendezvous_count d);
  Alcotest.(check int) "reads direct" (800 - !writes) (D.direct_count d);
  Alcotest.(check (list string)) "strict invariant" [] (D.invariant ~strict:true d)

let test_dispatch_cross_class_total_order () =
  (* Writes covering every class are totally ordered by the barriers. *)
  let last = Atomic.make (-1) in
  let ok = Atomic.make true in
  let execute (c : Fc.t) =
    if Atomic.exchange last c.Fc.idx >= c.Fc.idx then Atomic.set ok false
  in
  let d = D.start_full ~workers:4 ~execute () in
  let all = [ (0, true); (1, true); (2, true); (3, true) ] in
  for i = 0 to 199 do
    D.submit d { Fc.idx = i; fp = all }
  done;
  D.shutdown d;
  Alcotest.(check bool) "monotone execution order" true (Atomic.get ok);
  Alcotest.(check int) "all rendezvous" 200 (D.rendezvous_count d)

let test_dispatch_equivalent_to_sequential () =
  let commands = 1200 in
  let rng = Psmr_util.Rng.create ~seed:35L in
  let cmds =
    Array.init commands (fun i ->
        let target = Psmr_util.Rng.int rng 200 in
        ( i,
          if Psmr_util.Rng.below_percent rng 25.0 then
            Psmr_app.Linked_list.Add target
          else Psmr_app.Linked_list.Contains target ))
  in
  let ref_list = Psmr_app.Linked_list.create ~initial_size:100 in
  let expected =
    Array.map (fun (_, c) -> Psmr_app.Linked_list.execute ref_list c) cmds
  in
  let par_list = Psmr_app.Linked_list.create ~initial_size:100 in
  let responses = Array.make commands None in
  let execute (c : Fc.t) =
    let _, real = cmds.(c.Fc.idx) in
    responses.(c.Fc.idx) <- Some (Psmr_app.Linked_list.execute par_list real)
  in
  let d = D.start_full ~classes:1 ~workers:6 ~execute () in
  Array.iter
    (fun (i, c) ->
      D.submit d
        { Fc.idx = i; fp = [ (0, Psmr_app.Linked_list.is_write c) ] })
    cmds;
  D.shutdown d;
  Array.iteri
    (fun i exp ->
      match responses.(i) with
      | Some got when got = exp -> ()
      | Some got -> Alcotest.failf "response %d: expected %b got %b" i exp got
      | None -> Alcotest.failf "missing response %d" i)
    expected;
  Alcotest.(check int) "final size" (Psmr_app.Linked_list.size ref_list)
    (Psmr_app.Linked_list.size par_list)

(* --- optimistic dispatch --- *)

let test_optimistic_repair_equivalence () =
  (* Submit in a disordered (optimistic) stream, confirm in final order:
     responses must match sequential final-order execution, and the
     disorder must have triggered actual repairs. *)
  let n = 512 and keys = 8 and block = 16 in
  let rng = Psmr_util.Rng.create ~seed:36L in
  let cmds =
    Array.init n (fun i ->
        let k = Psmr_util.Rng.int rng keys in
        if Psmr_util.Rng.below_percent rng 40.0 then
          (i, Psmr_app.Kv_store.Put (k, i))
        else (i, Psmr_app.Kv_store.Get k))
  in
  let ref_store = Psmr_app.Kv_store.create ~capacity:keys in
  let expected =
    Array.map (fun (_, c) -> Psmr_app.Kv_store.execute ref_store c) cmds
  in
  let module KC = struct
    type t = int * Psmr_app.Kv_store.command

    let conflict (_, a) (_, b) = Psmr_app.Kv_store.conflict a b
    let footprint (_, c) = Psmr_app.Kv_store.footprint c

    let pp ppf (i, c) =
      Format.fprintf ppf "%d:%a" i Psmr_app.Kv_store.pp_command c
  end in
  let module ED = Psmr_early.Dispatch.Make (RP) (KC) in
  let par_store = Psmr_app.Kv_store.create ~capacity:keys in
  let responses = Array.make n None in
  let execute ((i, c) : KC.t) =
    responses.(i) <- Some (Psmr_app.Kv_store.execute par_store c)
  in
  let d = ED.start_full ~workers:4 ~execute () in
  let srng = Psmr_util.Rng.create ~seed:37L in
  let specs = Array.make n None in
  let base = ref 0 in
  while !base < n do
    let len = min block (n - !base) in
    let idxs = Array.init len (fun j -> !base + j) in
    let opt = Psmr_early.Spec_stream.disorder ~swap_pct:35.0 ~rng:srng idxs in
    Array.iter
      (fun i -> specs.(i) <- Some (ED.submit_optimistic d cmds.(i)))
      opt;
    Array.iter (fun i -> ED.confirm d (Option.get specs.(i))) idxs;
    base := !base + len
  done;
  ED.shutdown d;
  Array.iteri
    (fun i exp ->
      match responses.(i) with
      | Some got when got = exp -> ()
      | Some _ -> Alcotest.failf "response %d diverged from final order" i
      | None -> Alcotest.failf "missing response %d" i)
    expected;
  Alcotest.(check bool) "repairs happened" true (ED.repair_count d > 0);
  Alcotest.(check bool) "revocations happened" true
    (ED.revoked_count d >= ED.repair_count d);
  Alcotest.(check int) "nothing dropped" 0 (ED.dropped d);
  Alcotest.(check int) "all submitted" n (ED.submitted d);
  Alcotest.(check (list string)) "strict invariant" [] (ED.invariant ~strict:true d)

let test_optimistic_double_confirm_rejected () =
  let d = D.start_full ~workers:2 ~execute:(fun _ -> ()) () in
  let s = D.submit_optimistic d { Fc.idx = 0; fp = [ (0, true) ] } in
  D.confirm d s;
  (match D.confirm d s with
  | () -> Alcotest.fail "double confirm accepted"
  | exception Invalid_argument _ -> ());
  D.shutdown d

let test_optimistic_sim_deterministic () =
  let open Psmr_sim in
  let run () =
    let e = Engine.create () in
    let (module SP) = Sim_platform.make e Costs.default in
    let module SD = Psmr_early.Dispatch.Make (SP) (Fc) in
    let executed_at = ref 0.0 in
    Engine.spawn e (fun () ->
        let d = SD.start_full ~workers:8 ~execute:(fun _ -> SP.sleep 1e-5) () in
        let rng = Psmr_util.Rng.create ~seed:38L in
        let srng = Psmr_util.Rng.create ~seed:39L in
        let block = 8 in
        for b = 0 to 39 do
          let cmds =
            Array.init block (fun j ->
                {
                  Fc.idx = (b * block) + j;
                  fp = [ (Psmr_util.Rng.int rng 16, Psmr_util.Rng.bool rng) ];
                })
          in
          let idxs = Array.init block Fun.id in
          let opt =
            Psmr_early.Spec_stream.disorder ~swap_pct:20.0 ~rng:srng idxs
          in
          let specs = Array.make block None in
          Array.iter
            (fun j -> specs.(j) <- Some (SD.submit_optimistic d cmds.(j)))
            opt;
          Array.iter (fun j -> SD.confirm d (Option.get specs.(j))) idxs
        done;
        SD.shutdown d;
        executed_at := SP.now ());
    Engine.run e;
    !executed_at
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "ran" true (a > 0.0);
  Alcotest.(check (float 0.0)) "deterministic" a b

(* --- qcheck: early execution histories = coarse COS = sequential --- *)

(* Each property runs the same random workload through the early
   dispatcher, through the coarse-COS scheduler and through a sequential
   reference, and requires identical response histories. *)

let kv_equivalence =
  QCheck.Test.make ~name:"early = coarse = sequential (kv)" ~count:25
    QCheck.(
      pair (int_range 1 6)
        (list_of_size
           Gen.(int_range 1 120)
           (pair (int_range 0 7) (option (int_range 0 100)))))
    (fun (workers, ops) ->
      let module KC = struct
        type t = int * Psmr_app.Kv_store.command

        let conflict (_, a) (_, b) = Psmr_app.Kv_store.conflict a b
        let footprint (_, c) = Psmr_app.Kv_store.footprint c

        let pp ppf (i, c) =
          Format.fprintf ppf "%d:%a" i Psmr_app.Kv_store.pp_command c
      end in
      let cmds =
        List.mapi
          (fun i (k, v) ->
            ( i,
              match v with
              | None -> Psmr_app.Kv_store.Get k
              | Some v -> Psmr_app.Kv_store.Put (k, v) ))
          ops
      in
      let n = List.length cmds in
      let ref_store = Psmr_app.Kv_store.create ~capacity:8 in
      let expected =
        List.map (fun (_, c) -> Psmr_app.Kv_store.execute ref_store c) cmds
        |> Array.of_list
      in
      let run_early () =
        let module ED = Psmr_early.Dispatch.Make (RP) (KC) in
        let store = Psmr_app.Kv_store.create ~capacity:8 in
        let responses = Array.make n None in
        let d =
          ED.start ~workers
            ~execute:(fun (i, c) ->
              responses.(i) <- Some (Psmr_app.Kv_store.execute store c))
            ()
        in
        List.iter (ED.submit d) cmds;
        ED.shutdown d;
        responses
      in
      let run_coarse () =
        let (module S : Psmr_cos.Cos_intf.S with type cmd = KC.t) =
          Psmr_cos.Registry.instantiate_keyed Psmr_cos.Registry.Coarse
            (module RP)
            (module KC)
        in
        let module Sched = Psmr_sched.Scheduler.Make (RP) (S) in
        let store = Psmr_app.Kv_store.create ~capacity:8 in
        let responses = Array.make n None in
        let sched =
          Sched.start ~workers
            ~execute:(fun (i, c) ->
              responses.(i) <- Some (Psmr_app.Kv_store.execute store c))
            ()
        in
        List.iter (Sched.submit sched) cmds;
        Sched.shutdown sched;
        responses
      in
      let early = run_early () and coarse = run_coarse () in
      Array.for_all2
        (fun e r -> match r with Some r -> r = e | None -> false)
        expected early
      && Array.for_all2 (fun a b -> a = b) early coarse)

let bank_equivalence =
  QCheck.Test.make ~name:"early = coarse = sequential (bank)" ~count:25
    QCheck.(
      pair (int_range 1 6)
        (list_of_size
           Gen.(int_range 1 120)
           (triple (int_range 0 2) (pair (int_range 0 5) (int_range 0 5))
              (int_range 0 30))))
    (fun (workers, ops) ->
      let module KC = struct
        type t = int * Psmr_app.Bank.command

        let conflict (_, a) (_, b) = Psmr_app.Bank.conflict a b
        let footprint (_, c) = Psmr_app.Bank.footprint c

        let pp ppf (i, c) =
          Format.fprintf ppf "%d:%a" i Psmr_app.Bank.pp_command c
      end in
      let cmds =
        List.mapi
          (fun i (kind, (a, b), amount) ->
            ( i,
              match kind with
              | 0 -> Psmr_app.Bank.Balance a
              | 1 -> Psmr_app.Bank.Deposit (a, amount)
              | _ -> Psmr_app.Bank.Transfer { src = a; dst = b; amount } ))
          ops
      in
      let n = List.length cmds in
      let fresh () = Psmr_app.Bank.create ~accounts:6 ~initial_balance:50 in
      let ref_bank = fresh () in
      let expected =
        List.map (fun (_, c) -> Psmr_app.Bank.execute ref_bank c) cmds
        |> Array.of_list
      in
      let run_early () =
        let module ED = Psmr_early.Dispatch.Make (RP) (KC) in
        let bank = fresh () in
        let responses = Array.make n None in
        let d =
          ED.start ~workers
            ~execute:(fun (i, c) ->
              responses.(i) <- Some (Psmr_app.Bank.execute bank c))
            ()
        in
        List.iter (ED.submit d) cmds;
        ED.shutdown d;
        (responses, Psmr_app.Bank.total bank)
      in
      let run_coarse () =
        let (module S : Psmr_cos.Cos_intf.S with type cmd = KC.t) =
          Psmr_cos.Registry.instantiate_keyed Psmr_cos.Registry.Coarse
            (module RP)
            (module KC)
        in
        let module Sched = Psmr_sched.Scheduler.Make (RP) (S) in
        let bank = fresh () in
        let responses = Array.make n None in
        let sched =
          Sched.start ~workers
            ~execute:(fun (i, c) ->
              responses.(i) <- Some (Psmr_app.Bank.execute bank c))
            ()
        in
        List.iter (Sched.submit sched) cmds;
        Sched.shutdown sched;
        responses
      in
      let early, total = run_early () in
      let coarse = run_coarse () in
      (* Deposits add money, so compare against the reference bank rather
         than the initial total. *)
      total = Psmr_app.Bank.total ref_bank
      && Array.for_all2
           (fun e r -> match r with Some r -> r = e | None -> false)
           expected early
      && Array.for_all2 (fun a b -> a = b) early coarse)

let list_equivalence =
  QCheck.Test.make ~name:"early = coarse = sequential (linked list)" ~count:20
    QCheck.(
      pair (int_range 1 6)
        (list_of_size
           Gen.(int_range 1 120)
           (pair (int_range 0 60) bool)))
    (fun (workers, ops) ->
      let module KC = struct
        type t = int * Psmr_app.Linked_list.command

        let conflict (_, a) (_, b) = Psmr_app.Linked_list.conflict a b
        let footprint (_, c) = Psmr_app.Linked_list.footprint c

        let pp ppf (i, c) =
          Format.fprintf ppf "%d:%a" i Psmr_app.Linked_list.pp_command c
      end in
      let cmds =
        List.mapi
          (fun i (target, write) ->
            ( i,
              if write then Psmr_app.Linked_list.Add target
              else Psmr_app.Linked_list.Contains target ))
          ops
      in
      let n = List.length cmds in
      let ref_list = Psmr_app.Linked_list.create ~initial_size:30 in
      let expected =
        List.map (fun (_, c) -> Psmr_app.Linked_list.execute ref_list c) cmds
        |> Array.of_list
      in
      let run_early () =
        let module ED = Psmr_early.Dispatch.Make (RP) (KC) in
        let l = Psmr_app.Linked_list.create ~initial_size:30 in
        let responses = Array.make n None in
        let d =
          (* classes:1 so the single-variable service still spreads reads. *)
          ED.start_full ~classes:1 ~workers
            ~execute:(fun (i, c) ->
              responses.(i) <- Some (Psmr_app.Linked_list.execute l c))
            ()
        in
        List.iter (ED.submit d) cmds;
        ED.shutdown d;
        responses
      in
      let run_coarse () =
        let (module S : Psmr_cos.Cos_intf.S with type cmd = KC.t) =
          Psmr_cos.Registry.instantiate_keyed Psmr_cos.Registry.Coarse
            (module RP)
            (module KC)
        in
        let module Sched = Psmr_sched.Scheduler.Make (RP) (S) in
        let l = Psmr_app.Linked_list.create ~initial_size:30 in
        let responses = Array.make n None in
        let sched =
          Sched.start ~workers
            ~execute:(fun (i, c) ->
              responses.(i) <- Some (Psmr_app.Linked_list.execute l c))
            ()
        in
        List.iter (Sched.submit sched) cmds;
        Sched.shutdown sched;
        responses
      in
      let early = run_early () and coarse = run_coarse () in
      Array.for_all2
        (fun e r -> match r with Some r -> r = e | None -> false)
        expected early
      && Array.for_all2 (fun a b -> a = b) early coarse)

(* --- qcheck: optimistic execution with rollback = conservative early --- *)

(* Feed indices [0..n) through an optimistic dispatcher: the optimistic
   stream is a seeded disorder of each block, with a full-shuffle
   adversarial burst every fourth block when [burst] is set; confirmations
   always arrive in final (index) order. *)
let opt_feed ~n ~seed ~burst ~submit ~confirm =
  let srng = Psmr_util.Rng.create ~seed in
  let block = 16 in
  let specs = Array.make n None in
  let base = ref 0 and bi = ref 0 in
  while !base < n do
    let len = min block (n - !base) in
    let idxs = Array.init len (fun j -> !base + j) in
    let swap_pct = if burst && !bi mod 4 = 3 then 100.0 else 30.0 in
    let opt = Psmr_early.Spec_stream.disorder ~swap_pct ~rng:srng idxs in
    Array.iter (fun i -> specs.(i) <- Some (submit i)) opt;
    Array.iter (fun i -> confirm (Option.get specs.(i))) idxs;
    incr bi;
    base := !base + len
  done

let kv_opt_equivalence =
  QCheck.Test.make
    ~name:"early-opt rollback = early = sequential (kv)" ~count:20
    QCheck.(
      triple (int_range 1 6) bool
        (list_of_size
           Gen.(int_range 1 120)
           (pair (int_range 0 7) (option (int_range 0 100)))))
    (fun (workers, burst, ops) ->
      let module KC = struct
        type t = int * Psmr_app.Kv_store.command

        let conflict (_, a) (_, b) = Psmr_app.Kv_store.conflict a b
        let footprint (_, c) = Psmr_app.Kv_store.footprint c

        let pp ppf (i, c) =
          Format.fprintf ppf "%d:%a" i Psmr_app.Kv_store.pp_command c
      end in
      let cmds =
        Array.of_list
          (List.mapi
             (fun i (k, v) ->
               ( i,
                 match v with
                 | None -> Psmr_app.Kv_store.Get k
                 | Some v -> Psmr_app.Kv_store.Put (k, v) ))
             ops)
      in
      let n = Array.length cmds in
      let ref_store = Psmr_app.Kv_store.create ~capacity:8 in
      let expected =
        Array.map (fun (_, c) -> Psmr_app.Kv_store.execute ref_store c) cmds
      in
      let dump s = List.init 8 (fun k -> Psmr_app.Kv_store.execute s (Get k)) in
      let run_opt () =
        let module ED = Psmr_early.Dispatch.Make (RP) (KC) in
        let store = Psmr_app.Kv_store.create ~capacity:8 in
        let responses = Array.make n None in
        let speculate ((i, c) : KC.t) =
          let resp, u = Psmr_app.Kv_store.execute_undoable store c in
          responses.(i) <- Some resp;
          fun () -> Psmr_app.Kv_store.undo store u
        in
        let d =
          ED.start_full ~workers ~speculate
            ~execute:(fun (i, c) ->
              responses.(i) <- Some (Psmr_app.Kv_store.execute store c))
            ()
        in
        opt_feed ~n
          ~seed:(Int64.of_int ((workers * 1009) + n))
          ~burst
          ~submit:(fun i -> ED.submit_optimistic d cmds.(i))
          ~confirm:(fun sp -> ED.confirm d sp);
        ED.shutdown d;
        (responses, dump store)
      in
      let run_early () =
        let module ED = Psmr_early.Dispatch.Make (RP) (KC) in
        let store = Psmr_app.Kv_store.create ~capacity:8 in
        let responses = Array.make n None in
        let d =
          ED.start ~workers
            ~execute:(fun (i, c) ->
              responses.(i) <- Some (Psmr_app.Kv_store.execute store c))
            ()
        in
        Array.iter (ED.submit d) cmds;
        ED.shutdown d;
        responses
      in
      let opt, opt_state = run_opt () in
      let early = run_early () in
      opt_state = dump ref_store
      && Array.for_all2
           (fun e r -> match r with Some r -> r = e | None -> false)
           expected opt
      && Array.for_all2 (fun a b -> a = b) opt early)

let bank_opt_equivalence =
  QCheck.Test.make
    ~name:"early-opt rollback = early = sequential (bank)" ~count:20
    QCheck.(
      triple (int_range 1 6) bool
        (list_of_size
           Gen.(int_range 1 120)
           (triple (int_range 0 2) (pair (int_range 0 5) (int_range 0 5))
              (int_range 0 30))))
    (fun (workers, burst, ops) ->
      let module KC = struct
        type t = int * Psmr_app.Bank.command

        let conflict (_, a) (_, b) = Psmr_app.Bank.conflict a b
        let footprint (_, c) = Psmr_app.Bank.footprint c

        let pp ppf (i, c) =
          Format.fprintf ppf "%d:%a" i Psmr_app.Bank.pp_command c
      end in
      let cmds =
        Array.of_list
          (List.mapi
             (fun i (kind, (a, b), amount) ->
               ( i,
                 match kind with
                 | 0 -> Psmr_app.Bank.Balance a
                 | 1 -> Psmr_app.Bank.Deposit (a, amount)
                 | _ -> Psmr_app.Bank.Transfer { src = a; dst = b; amount } ))
             ops)
      in
      let n = Array.length cmds in
      let fresh () = Psmr_app.Bank.create ~accounts:6 ~initial_balance:50 in
      let ref_bank = fresh () in
      let expected =
        Array.map (fun (_, c) -> Psmr_app.Bank.execute ref_bank c) cmds
      in
      let run_opt () =
        let module ED = Psmr_early.Dispatch.Make (RP) (KC) in
        let bank = fresh () in
        let responses = Array.make n None in
        let speculate ((i, c) : KC.t) =
          let resp, u = Psmr_app.Bank.execute_undoable bank c in
          responses.(i) <- Some resp;
          fun () -> Psmr_app.Bank.undo bank u
        in
        let d =
          ED.start_full ~workers ~speculate
            ~execute:(fun (i, c) ->
              responses.(i) <- Some (Psmr_app.Bank.execute bank c))
            ()
        in
        opt_feed ~n
          ~seed:(Int64.of_int ((workers * 1013) + n))
          ~burst
          ~submit:(fun i -> ED.submit_optimistic d cmds.(i))
          ~confirm:(fun sp -> ED.confirm d sp);
        ED.shutdown d;
        (responses, Psmr_app.Bank.total bank)
      in
      let run_early () =
        let module ED = Psmr_early.Dispatch.Make (RP) (KC) in
        let bank = fresh () in
        let responses = Array.make n None in
        let d =
          ED.start ~workers
            ~execute:(fun (i, c) ->
              responses.(i) <- Some (Psmr_app.Bank.execute bank c))
            ()
        in
        Array.iter (ED.submit d) cmds;
        ED.shutdown d;
        responses
      in
      let opt, total = run_opt () in
      let early = run_early () in
      total = Psmr_app.Bank.total ref_bank
      && Array.for_all2
           (fun e r -> match r with Some r -> r = e | None -> false)
           expected opt
      && Array.for_all2 (fun a b -> a = b) opt early)

let list_opt_equivalence =
  QCheck.Test.make
    ~name:"early-opt rollback = early = sequential (linked list)" ~count:15
    QCheck.(
      triple (int_range 1 6) bool
        (list_of_size Gen.(int_range 1 120) (pair (int_range 0 60) bool)))
    (fun (workers, burst, ops) ->
      let module KC = struct
        type t = int * Psmr_app.Linked_list.command

        let conflict (_, a) (_, b) = Psmr_app.Linked_list.conflict a b
        let footprint (_, c) = Psmr_app.Linked_list.footprint c

        let pp ppf (i, c) =
          Format.fprintf ppf "%d:%a" i Psmr_app.Linked_list.pp_command c
      end in
      let cmds =
        Array.of_list
          (List.mapi
             (fun i (target, write) ->
               ( i,
                 if write then Psmr_app.Linked_list.Add target
                 else Psmr_app.Linked_list.Contains target ))
             ops)
      in
      let n = Array.length cmds in
      let ref_list = Psmr_app.Linked_list.create ~initial_size:30 in
      let expected =
        Array.map (fun (_, c) -> Psmr_app.Linked_list.execute ref_list c) cmds
      in
      let run_opt () =
        let module ED = Psmr_early.Dispatch.Make (RP) (KC) in
        let l = Psmr_app.Linked_list.create ~initial_size:30 in
        let responses = Array.make n None in
        let speculate ((i, c) : KC.t) =
          let resp, u = Psmr_app.Linked_list.execute_undoable l c in
          responses.(i) <- Some resp;
          fun () -> Psmr_app.Linked_list.undo l u
        in
        let d =
          (* classes:1 so the single-variable service still spreads reads. *)
          ED.start_full ~classes:1 ~workers ~speculate
            ~execute:(fun (i, c) ->
              responses.(i) <- Some (Psmr_app.Linked_list.execute l c))
            ()
        in
        opt_feed ~n
          ~seed:(Int64.of_int ((workers * 1019) + n))
          ~burst
          ~submit:(fun i -> ED.submit_optimistic d cmds.(i))
          ~confirm:(fun sp -> ED.confirm d sp);
        ED.shutdown d;
        (responses, Psmr_app.Linked_list.size l)
      in
      let opt, size = run_opt () in
      size = Psmr_app.Linked_list.size ref_list
      && Array.for_all2
           (fun e r -> match r with Some r -> r = e | None -> false)
           expected opt)

(* --- the 0%-mis fast path, pinned --- *)

let test_optimistic_zero_mis_fast_path () =
  (* With the optimistic stream already in final order, confirmation must
     be pure fast path: the observability ledger pins every repair-family
     counter at zero, and a per-command minor-heap budget guards against
     repair-scan or log-walk work sneaking back onto the hot path (the
     regression this PR fixed was exactly such serialized repair-side
     work). *)
  let reg = Psmr_obs.Metrics.make () in
  Psmr_obs.Metrics.enable reg;
  Fun.protect ~finally:Psmr_obs.Metrics.disable @@ fun () ->
  let spec_runs = Atomic.make 0 in
  let speculate (_ : Fc.t) =
    Atomic.incr spec_runs;
    Fun.id
  in
  let d = D.start_full ~workers:4 ~speculate ~execute:(fun _ -> ()) () in
  let cmd i = { Fc.idx = i; fp = [ (i mod 8, i mod 4 = 0) ] } in
  (* Pipeline a block ahead, confirming in the same order as submission —
     a 0%-mis stream with real overlap between speculation and
     confirmation. *)
  let block = 32 in
  let feed base count =
    let specs = Array.make block None in
    let at = ref base in
    while !at < base + count do
      let len = min block (base + count - !at) in
      for j = 0 to len - 1 do
        specs.(j) <- Some (D.submit_optimistic d (cmd (!at + j)))
      done;
      for j = 0 to len - 1 do
        D.confirm d (Option.get specs.(j))
      done;
      at := !at + len
    done
  in
  feed 0 256 (* warmup: first dispatches grow internal structures *);
  let n = 4096 in
  let before = Gc.minor_words () in
  feed 256 n;
  let words = Gc.minor_words () -. before in
  D.shutdown d;
  let c = Psmr_obs.Metrics.counters reg in
  Alcotest.(check int) "no repairs" 0 c.spec_repairs;
  Alcotest.(check int) "no revocations" 0 c.spec_revoked;
  Alcotest.(check int) "no rollbacks" 0 c.spec_rollbacks;
  Alcotest.(check int) "nothing undone" 0 c.spec_undone;
  Alcotest.(check int) "no redos" 0 c.spec_redos;
  Alcotest.(check int) "no requeues" 0 c.requeues;
  Alcotest.(check bool) "speculation actually ran" true
    (Atomic.get spec_runs > 0);
  Alcotest.(check int) "every command executed" (256 + n) (D.executed d);
  Alcotest.(check int) "dispatch agrees: no rollbacks" 0 (D.rollback_count d);
  Alcotest.(check int) "dispatch agrees: no redos" 0 (D.redo_count d);
  Alcotest.(check bool) "single execution per command" true
    (D.redo_depth_max d <= 1);
  let per_cmd = words /. float_of_int n in
  if per_cmd > 512.0 then
    Alcotest.failf "fast path allocates %.0f minor words/command (budget 512)"
      per_cmd

let test_submit_batch_alloc_budget () =
  (* Batched confirm on the conservative feed: with no speculation in
     flight, [submit_batch] must take the single-pass fast path — one
     chunked window acquire and one lock round per worker queue for the
     whole batch.  Measured ~110 minor words/command on this workload;
     the 256-word budget leaves slack for GC jitter and the workers'
     concurrent pops (they share the minor heap) while still catching a
     reintroduced per-command acquire or a per-command queue-append
     (the latter is O(batch²) words and blows the budget immediately). *)
  let d = D.start ~max_size:4096 ~workers:4 ~execute:(fun _ -> ()) () in
  let cmd i = { Fc.idx = i; fp = [ (i mod 4, true) ] } in
  let batch base len = Array.init len (fun j -> cmd (base + j)) in
  let bsz = 256 in
  D.submit_batch d (batch 0 bsz) (* warmup: grows internal structures *);
  Thread.delay 0.05;
  let rounds = 8 in
  let before = Gc.minor_words () in
  for r = 0 to rounds - 1 do
    D.submit_batch d (batch ((r + 1) * bsz) bsz)
  done;
  let words = Gc.minor_words () -. before in
  let n = rounds * bsz in
  D.shutdown d;
  Alcotest.(check int) "every command executed" (bsz + n) (D.executed d);
  let per_cmd = words /. float_of_int n in
  if per_cmd > 256.0 then
    Alcotest.failf
      "batched submit allocates %.0f minor words/command (budget 256)" per_cmd

(* --- worker crash inside the repair window (DES) --- *)

let test_keyed_bench_opt_crash_mid_repair () =
  (* Crash a worker while the optimistic run is actively repairing
     (mis_pct high enough that rollbacks are continuously in flight): the
     crashed worker's reservation must requeue and the run keep
     completing commands after the respawn. *)
  let faults = Psmr_fault.Schedule.parse_exn "worker-crash=2@0.004+0.002" in
  let spec =
    { Psmr_workload.Workload.Keyed.low_conflict with keys = 16; mis_pct = 30.0 }
  in
  let r =
    Psmr_harness.Keyed_bench.run
      ~backend:(Psmr_early.Registry.Early Psmr_early.Early_intf.optimistic)
      ~workers:4 ~spec ~faults ~duration:0.01 ~warmup:0.002 ()
  in
  Alcotest.(check int) "one crash" 1 r.crashed_workers;
  Alcotest.(check bool) "fault injected" true (r.faults_injected >= 1);
  Alcotest.(check bool) "repairs happened" true (r.repairs > 0);
  Alcotest.(check bool) "rollbacks happened" true (r.rollbacks > 0);
  Alcotest.(check bool) "kept completing after respawn" true (r.executed > 0)

(* --- registry --- *)

let test_backend_registry_roundtrip () =
  let module R = Psmr_early.Registry in
  List.iter
    (fun b ->
      let s = R.to_string b in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %S" s)
        true
        (R.of_string s = Some b))
    R.all;
  let check s expect =
    Alcotest.(check bool)
      (Printf.sprintf "parse %S" s)
      true
      (R.of_string s = expect)
  in
  check "early" (Some (R.Early Psmr_early.Early_intf.conservative));
  check "early-opt" (Some (R.Early Psmr_early.Early_intf.optimistic));
  check "early_opt" (Some (R.Early Psmr_early.Early_intf.optimistic));
  check "early-4"
    (Some (R.Early { Psmr_early.Early_intf.classes = Some 4; optimistic = false }));
  check "early-opt-8"
    (Some (R.Early { Psmr_early.Early_intf.classes = Some 8; optimistic = true }));
  check "early-0" None;
  check "early-x" None;
  check "coarse" (Some (R.Cos Psmr_cos.Registry.Coarse));
  check "indexed" (Some (R.Cos Psmr_cos.Registry.Indexed));
  check "bogus" None;
  Alcotest.(check bool) "early-opt is optimistic" true
    (R.is_optimistic (R.Early Psmr_early.Early_intf.optimistic));
  Alcotest.(check bool) "early is conservative" false
    (R.is_optimistic (R.Early Psmr_early.Early_intf.conservative))

let backend_smoke backend () =
  (* Generic BACKEND dispatch: the registry instance must run a workload
     end to end, whatever the family. *)
  let (module B : Psmr_sched.Sched_intf.BACKEND with type cmd = Fc.t) =
    Psmr_early.Registry.instantiate backend (module RP) (module Fc)
  in
  let count = Atomic.make 0 in
  let b = B.start ~workers:3 ~execute:(fun _ -> Atomic.incr count) () in
  let rng = Psmr_util.Rng.create ~seed:40L in
  for i = 0 to 299 do
    B.submit b
      {
        Fc.idx = i;
        fp = [ (Psmr_util.Rng.int rng 8, Psmr_util.Rng.below_percent rng 20.0) ];
      }
  done;
  B.shutdown b;
  Alcotest.(check int) "executed (counter)" 300 (Atomic.get count);
  Alcotest.(check int) "executed (backend)" 300 (B.executed b);
  Alcotest.(check int) "submitted" 300 (B.submitted b)

(* --- the keyed-workload harness on the DES --- *)

let test_keyed_bench_early () =
  let r =
    Psmr_harness.Keyed_bench.run
      ~backend:(Psmr_early.Registry.Early Psmr_early.Early_intf.conservative)
      ~workers:8 ~spec:Psmr_workload.Workload.Keyed.low_conflict
      ~duration:0.01 ~warmup:0.002 ()
  in
  Alcotest.(check bool) "executed some" true (r.executed > 0);
  Alcotest.(check bool) "positive kops" true (r.kops > 0.0);
  Alcotest.(check bool) "fast path dominates" true (r.direct > r.rendezvous);
  Alcotest.(check int) "nothing dropped" 0 r.dropped

let test_keyed_bench_optimistic_repairs () =
  let spec =
    { Psmr_workload.Workload.Keyed.low_conflict with keys = 32; mis_pct = 10.0 }
  in
  let r =
    Psmr_harness.Keyed_bench.run
      ~backend:(Psmr_early.Registry.Early Psmr_early.Early_intf.optimistic)
      ~workers:8 ~spec ~duration:0.01 ~warmup:0.002 ()
  in
  Alcotest.(check bool) "executed some" true (r.executed > 0);
  Alcotest.(check bool) "mis-speculation repaired" true (r.repairs > 0);
  Alcotest.(check bool) "revoked >= repairs" true (r.revoked >= r.repairs)

let test_keyed_bench_crash_respawn () =
  let faults = Psmr_fault.Schedule.parse_exn "worker-crash=2@0.004+0.002" in
  let r =
    Psmr_harness.Keyed_bench.run
      ~backend:(Psmr_early.Registry.Early Psmr_early.Early_intf.conservative)
      ~workers:4 ~spec:Psmr_workload.Workload.Keyed.low_conflict ~faults
      ~duration:0.01 ~warmup:0.002 ()
  in
  Alcotest.(check int) "one crash" 1 r.crashed_workers;
  Alcotest.(check bool) "fault injected" true (r.faults_injected >= 1);
  Alcotest.(check bool) "kept executing after respawn" true (r.executed > 0)

let test_keyed_bench_cos_backend () =
  let r =
    Psmr_harness.Keyed_bench.run
      ~backend:(Psmr_early.Registry.Cos Psmr_cos.Registry.Indexed)
      ~workers:8 ~spec:Psmr_workload.Workload.Keyed.low_conflict
      ~duration:0.01 ~warmup:0.002 ()
  in
  Alcotest.(check bool) "executed some" true (r.executed > 0);
  Alcotest.(check int) "no early stats on cos" 0 (r.direct + r.rendezvous)

let () =
  Alcotest.run "early-scheduler"
    [
      ( "correctness",
        [
          Alcotest.test_case "reads parallel, writes exclusive" `Quick
            test_reads_parallel_writes_exclusive;
          Alcotest.test_case "equivalent to sequential" `Quick
            test_equivalent_to_sequential;
          Alcotest.test_case "single worker sequential" `Quick
            test_single_worker_sequential;
          Alcotest.test_case "writes totally ordered" `Quick
            test_all_writes_totally_ordered;
        ] );
      ( "sim",
        [ Alcotest.test_case "deterministic" `Quick test_on_sim_deterministic ]
      );
      ( "class-map",
        [
          Alcotest.test_case "shape and clamping" `Quick test_class_map_shape;
          Alcotest.test_case "plans" `Quick test_class_map_plans;
        ] );
      ( "barrier",
        [ Alcotest.test_case "rendezvous" `Quick test_barrier_rendezvous ] );
      ( "dispatch",
        [
          Alcotest.test_case "one class = readers-writers" `Quick
            test_dispatch_rw_one_class;
          Alcotest.test_case "cross-class writes totally ordered" `Quick
            test_dispatch_cross_class_total_order;
          Alcotest.test_case "equivalent to sequential" `Quick
            test_dispatch_equivalent_to_sequential;
        ] );
      ( "optimistic",
        [
          Alcotest.test_case "repair restores final order" `Quick
            test_optimistic_repair_equivalence;
          Alcotest.test_case "double confirm rejected" `Quick
            test_optimistic_double_confirm_rejected;
          Alcotest.test_case "deterministic on sim" `Quick
            test_optimistic_sim_deterministic;
          Alcotest.test_case "zero-mis fast path does no repair work" `Quick
            test_optimistic_zero_mis_fast_path;
          Alcotest.test_case "batched submit stays allocation-flat" `Quick
            test_submit_batch_alloc_budget;
        ] );
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [
            kv_equivalence;
            bank_equivalence;
            list_equivalence;
            kv_opt_equivalence;
            bank_opt_equivalence;
            list_opt_equivalence;
          ] );
      ( "registry",
        [
          Alcotest.test_case "roundtrip and parsing" `Quick
            test_backend_registry_roundtrip;
          Alcotest.test_case "instantiate early" `Quick
            (backend_smoke
               (Psmr_early.Registry.Early Psmr_early.Early_intf.conservative));
          Alcotest.test_case "instantiate early-4" `Quick
            (backend_smoke
               (Psmr_early.Registry.Early
                  { Psmr_early.Early_intf.classes = Some 4; optimistic = false }));
          Alcotest.test_case "instantiate cos:coarse" `Quick
            (backend_smoke (Psmr_early.Registry.Cos Psmr_cos.Registry.Coarse));
        ] );
      ( "harness",
        [
          Alcotest.test_case "keyed bench early" `Quick test_keyed_bench_early;
          Alcotest.test_case "keyed bench optimistic repairs" `Quick
            test_keyed_bench_optimistic_repairs;
          Alcotest.test_case "keyed bench crash respawn" `Quick
            test_keyed_bench_crash_respawn;
          Alcotest.test_case "keyed bench crash mid-repair (early-opt)" `Quick
            test_keyed_bench_opt_crash_mid_repair;
          Alcotest.test_case "keyed bench cos backend" `Quick
            test_keyed_bench_cos_backend;
        ] );
    ]
