(* Tests for the early (queue-dispatch) scheduler: the related-work baseline
   architecture where scheduling decisions happen at delivery time. *)

module RP = Psmr_platform.Real_platform

module Rw = struct
  type t = { idx : int; write : bool }

  let is_write c = c.write
  let pp ppf c = Format.fprintf ppf "%s%d" (if c.write then "w" else "r") c.idx
end

module E = Psmr_sched.Early.Make (RP) (Rw)

let test_reads_parallel_writes_exclusive () =
  let inside = Atomic.make 0 in
  let write_overlap = Atomic.make false in
  let peak_reads = Atomic.make 0 in
  let execute (c : Rw.t) =
    let now_inside = 1 + Atomic.fetch_and_add inside 1 in
    if c.write && now_inside > 1 then Atomic.set write_overlap true;
    if not c.write then begin
      let rec bump () =
        let cur = Atomic.get peak_reads in
        if now_inside > cur && not (Atomic.compare_and_set peak_reads cur now_inside)
        then bump ()
      in
      bump ()
    end;
    Thread.yield ();
    Atomic.decr inside
  in
  let sched = E.start ~workers:4 ~execute () in
  let rng = Psmr_util.Rng.create ~seed:31L in
  for i = 0 to 999 do
    E.submit sched { Rw.idx = i; write = Psmr_util.Rng.below_percent rng 10.0 }
  done;
  E.shutdown sched;
  Alcotest.(check int) "all executed" 1000 (E.executed sched);
  Alcotest.(check bool) "writes ran alone" false (Atomic.get write_overlap)

let test_equivalent_to_sequential () =
  (* Execute a real linked-list workload and compare responses with
     sequential delivery-order execution (same check as for the COS). *)
  let commands = 1500 in
  let rng = Psmr_util.Rng.create ~seed:32L in
  let cmds =
    Array.init commands (fun i ->
        let target = Psmr_util.Rng.int rng 200 in
        ( i,
          if Psmr_util.Rng.below_percent rng 25.0 then
            Psmr_app.Linked_list.Add target
          else Psmr_app.Linked_list.Contains target ))
  in
  let ref_list = Psmr_app.Linked_list.create ~initial_size:100 in
  let expected =
    Array.map (fun (_, c) -> Psmr_app.Linked_list.execute ref_list c) cmds
  in
  let par_list = Psmr_app.Linked_list.create ~initial_size:100 in
  let responses = Array.make commands None in
  let execute (c : Rw.t) =
    let _, real = cmds.(c.Rw.idx) in
    responses.(c.Rw.idx) <- Some (Psmr_app.Linked_list.execute par_list real)
  in
  let sched = E.start ~workers:6 ~execute () in
  Array.iter
    (fun (i, c) ->
      E.submit sched { Rw.idx = i; write = Psmr_app.Linked_list.is_write c })
    cmds;
  E.shutdown sched;
  Array.iteri
    (fun i exp ->
      match responses.(i) with
      | Some got when got = exp -> ()
      | Some got -> Alcotest.failf "response %d: expected %b got %b" i exp got
      | None -> Alcotest.failf "missing response %d" i)
    expected;
  Alcotest.(check int) "final size" (Psmr_app.Linked_list.size ref_list)
    (Psmr_app.Linked_list.size par_list)

let test_single_worker_sequential () =
  let order = ref [] in
  let execute (c : Rw.t) = order := c.Rw.idx :: !order in
  let sched = E.start ~workers:1 ~execute () in
  for i = 0 to 49 do
    E.submit sched { Rw.idx = i; write = i mod 3 = 0 }
  done;
  E.shutdown sched;
  Alcotest.(check (list int)) "delivery order" (List.init 50 Fun.id)
    (List.rev !order)

let test_all_writes_totally_ordered () =
  let last = Atomic.make (-1) in
  let ok = Atomic.make true in
  let execute (c : Rw.t) =
    if Atomic.exchange last c.Rw.idx >= c.Rw.idx then Atomic.set ok false
  in
  let sched = E.start ~workers:8 ~execute () in
  for i = 0 to 299 do
    E.submit sched { Rw.idx = i; write = true }
  done;
  E.shutdown sched;
  Alcotest.(check bool) "monotone execution order" true (Atomic.get ok)

let test_on_sim_deterministic () =
  let open Psmr_sim in
  let run () =
    let e = Engine.create () in
    let (module SP) = Sim_platform.make e Costs.default in
    let module SE = Psmr_sched.Early.Make (SP) (Rw) in
    let executed_at = ref 0.0 in
    Engine.spawn e (fun () ->
        let sched = SE.start ~workers:8 ~execute:(fun _ -> SP.sleep 1e-5) () in
        let rng = Psmr_util.Rng.create ~seed:33L in
        for i = 0 to 499 do
          SE.submit sched
            { Rw.idx = i; write = Psmr_util.Rng.below_percent rng 15.0 }
        done;
        SE.shutdown sched;
        executed_at := SP.now ());
    Engine.run e;
    !executed_at
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "ran" true (a > 0.0);
  Alcotest.(check (float 0.0)) "deterministic" a b

let () =
  Alcotest.run "early-scheduler"
    [
      ( "correctness",
        [
          Alcotest.test_case "reads parallel, writes exclusive" `Quick
            test_reads_parallel_writes_exclusive;
          Alcotest.test_case "equivalent to sequential" `Quick
            test_equivalent_to_sequential;
          Alcotest.test_case "single worker sequential" `Quick
            test_single_worker_sequential;
          Alcotest.test_case "writes totally ordered" `Quick
            test_all_writes_totally_ordered;
        ] );
      ( "sim",
        [ Alcotest.test_case "deterministic" `Quick test_on_sim_deterministic ]
      );
    ]
