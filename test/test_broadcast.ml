(* Unit tests for the atomic broadcast protocol, driven deterministically on
   the simulated platform: virtual time controls batching, heartbeats and
   election timeouts exactly. *)

open Psmr_broadcast

(* A 3-replica harness on the simulator: replicas exchange protocol messages
   through the simulated network; each replica has an event-loop process and
   a ticker process, mirroring the deployment wiring. *)
module Harness = struct
  type t = {
    engine : Psmr_sim.Engine.t;
    deliveries : int list list ref array;  (* per replica, batches in order *)
    views : (unit -> int) array;
    log_info : (unit -> int * int) array;  (* per replica: (base, length) *)
    crash : int -> unit;
    partition : (src:int -> dst:int -> bool) -> unit;
    heal : unit -> unit;
    run_until : float -> unit;
  }

  let config =
    {
      Abcast.batch_max = 8;
      batch_delay = 1e-3;
      heartbeat_interval = 5e-3;
      election_timeout = 50e-3;
      checkpoint_interval = 16;
    }

  let make ?(config = config) ?(n = 3) ?(latency = 1e-4) ?(submit = fun _ -> [])
      ?(faults = Psmr_fault.Schedule.empty) () =
    let engine = Psmr_sim.Engine.create () in
    (* Armed around [run_until], so every send the protocol makes consults
       the fault plan; the empty schedule never fires and changes nothing. *)
    let plan =
      Psmr_fault.Plan.make ~now:(fun () -> Psmr_sim.Engine.now engine) faults
    in
    let (module SP) = Psmr_sim.Sim_platform.make engine Psmr_sim.Costs.zero in
    let module Net = Psmr_net.Network.Make (SP) in
    let module Ab = Abcast.Make (SP) in
    (* Wire type: protocol messages plus self-addressed ticks. *)
    let net = Net.create ~latency:(fun ~src:_ ~dst:_ -> latency) ~nodes:n () in
    let deliveries = Array.init n (fun _ -> ref []) in
    let abs =
      Array.init n (fun id ->
          Ab.create ~config ~id ~n
            ~send:(fun dst msg -> Net.send net ~src:id ~dst (`Proto msg))
            ~deliver:(fun batch ->
              deliveries.(id) := Array.to_list batch :: !(deliveries.(id)))
            ())
    in
    Array.iteri
      (fun id ab ->
        Psmr_sim.Engine.spawn engine (fun () ->
            let rec loop () =
              match Net.recv net id with
              | None -> ()
              | Some { src; payload; _ } ->
                  (match payload with
                  | `Proto m -> Ab.handle ab ~src m
                  | `Tick -> Ab.tick ab);
                  loop ()
            in
            loop ());
        Psmr_sim.Engine.spawn engine (fun () ->
            let rec tick_loop () =
              if not (Net.is_crashed net id) then begin
                SP.sleep 1e-3;
                Net.send net ~src:id ~dst:id `Tick;
                tick_loop ()
              end
            in
            tick_loop ()))
      abs;
    (* Command source: at time given by [submit], feed commands to the
       replica of choice. *)
    List.iter
      (fun (at, replica, cmds) ->
        Psmr_sim.Engine.spawn engine ~delay:at (fun () ->
            Ab.submit abs.(replica) (Array.of_list cmds)))
      (submit ());
    {
      engine;
      deliveries;
      views = Array.map (fun ab () -> Ab.view ab) abs;
      log_info = Array.map (fun ab () -> (Ab.log_base ab, Ab.log_length ab)) abs;
      crash = (fun id -> Net.crash net id);
      partition = (fun f -> Net.set_link_filter net f);
      heal = (fun () -> Net.heal net);
      run_until =
        (fun t ->
          Psmr_fault.Plan.with_plan plan (fun () ->
              Psmr_sim.Engine.run ~until:t engine));
    }

  let delivered t id = List.rev !(t.deliveries.(id)) |> List.concat
end

let test_total_order_basic () =
  let h =
    Harness.make ~submit:(fun () -> [ (0.001, 0, [ 1; 2; 3 ]) ]) ()
  in
  h.run_until 0.5;
  let d0 = Harness.delivered h 0 in
  Alcotest.(check (list int)) "leader delivers" [ 1; 2; 3 ] d0;
  Alcotest.(check (list int)) "replica 1 same" d0 (Harness.delivered h 1);
  Alcotest.(check (list int)) "replica 2 same" d0 (Harness.delivered h 2)

let test_submit_via_follower_forwards () =
  let h = Harness.make ~submit:(fun () -> [ (0.001, 1, [ 42 ]) ]) () in
  h.run_until 0.5;
  Alcotest.(check (list int)) "ordered via leader" [ 42 ] (Harness.delivered h 2)

let test_batching_by_size () =
  (* 8 commands at once fit exactly one batch (batch_max = 8): they must be
     delivered contiguously and immediately, without waiting batch_delay. *)
  let h =
    Harness.make ~submit:(fun () -> [ (0.001, 0, [ 1; 2; 3; 4; 5; 6; 7; 8 ]) ]) ()
  in
  h.run_until 0.01;
  Alcotest.(check (list int)) "full batch cut immediately"
    [ 1; 2; 3; 4; 5; 6; 7; 8 ] (Harness.delivered h 1)

let test_batching_by_delay () =
  (* A single command must wait for the batch timer (1ms) but no longer. *)
  let h = Harness.make ~submit:(fun () -> [ (0.001, 0, [ 9 ]) ]) () in
  h.run_until 0.02;
  Alcotest.(check (list int)) "timer flushes partial batch" [ 9 ]
    (Harness.delivered h 1)

let test_many_batches_total_order () =
  let submits =
    List.init 40 (fun i -> (0.001 +. (0.0007 *. float_of_int i), 0, [ i ]))
  in
  let h = Harness.make ~submit:(fun () -> submits) () in
  h.run_until 1.0;
  let d0 = Harness.delivered h 0 in
  Alcotest.(check int) "all delivered" 40 (List.length d0);
  Alcotest.(check (list int)) "in submission order" (List.init 40 Fun.id) d0;
  Alcotest.(check (list int)) "replica1 identical" d0 (Harness.delivered h 1);
  Alcotest.(check (list int)) "replica2 identical" d0 (Harness.delivered h 2)

let test_no_quorum_no_delivery () =
  (* Crash both followers: the leader alone (1 of 3 < f+1 = 2) must not
     commit anything. *)
  let h = Harness.make ~submit:(fun () -> [ (0.005, 0, [ 7 ]) ]) () in
  h.crash 1;
  h.crash 2;
  h.run_until 0.3;
  Alcotest.(check (list int)) "nothing committed" [] (Harness.delivered h 0)

let test_view_change_on_leader_crash () =
  let h = Harness.make ~submit:(fun () -> [ (0.2, 1, [ 5 ]) ]) () in
  (* Let view 0 settle, then kill the leader before the submission. *)
  h.run_until 0.05;
  h.crash 0;
  h.run_until 1.0;
  Alcotest.(check bool) "replica 1 moved to a later view" true (h.views.(1) () > 0);
  Alcotest.(check bool) "replicas agree on view" true (h.views.(1) () = h.views.(2) ());
  Alcotest.(check (list int)) "command ordered by new leader" [ 5 ]
    (Harness.delivered h 1);
  Alcotest.(check (list int)) "both survivors deliver" [ 5 ]
    (Harness.delivered h 2)

let test_uncommitted_survive_view_change () =
  (* Commands committed in view 0 are preserved across a view change. *)
  let h = Harness.make ~submit:(fun () -> [ (0.001, 0, [ 1; 2; 3 ]) ]) () in
  h.run_until 0.05;
  (* committed in view 0 *)
  h.crash 0;
  let h2_submit = [ 4; 5 ] in
  ignore h2_submit;
  h.run_until 1.0;
  Alcotest.(check (list int)) "prefix preserved at replica 1" [ 1; 2; 3 ]
    (Harness.delivered h 1);
  Alcotest.(check (list int)) "prefix preserved at replica 2" [ 1; 2; 3 ]
    (Harness.delivered h 2)

let test_delivery_after_view_change_continues () =
  let h =
    Harness.make
      ~submit:(fun () -> [ (0.001, 0, [ 1 ]); (0.5, 1, [ 2 ]); (0.6, 2, [ 3 ]) ])
      ()
  in
  h.run_until 0.05;
  h.crash 0;
  h.run_until 2.0;
  Alcotest.(check (list int)) "old and new commands, one order" [ 1; 2; 3 ]
    (Harness.delivered h 1);
  Alcotest.(check (list int)) "identical at replica 2" [ 1; 2; 3 ]
    (Harness.delivered h 2)

(* --- checkpointing and log truncation --- *)

let test_log_truncation_bounds_memory () =
  (* 200 single-command batches with checkpoint interval 16: by the end,
     every replica must have truncated most of its log. *)
  let submits =
    List.init 200 (fun i -> (0.001 +. (0.002 *. float_of_int i), 0, [ i ]))
  in
  let h = Harness.make ~submit:(fun () -> submits) () in
  h.run_until 2.0;
  for id = 0 to 2 do
    let base, len = h.log_info.(id) () in
    if base < 150 then
      Alcotest.failf "replica %d: base %d too low (log never truncated)" id base;
    if len > 64 then Alcotest.failf "replica %d: log length %d unbounded" id len
  done;
  (* Truncation must not have disturbed delivery. *)
  let d0 = Harness.delivered h 0 in
  Alcotest.(check int) "all delivered" 200 (List.length d0);
  Alcotest.(check (list int)) "replica1 identical" d0 (Harness.delivered h 1)

let test_view_change_after_truncation () =
  (* Commit and truncate, then crash the leader: the survivors must agree
     on a view and keep making progress from their truncated logs. *)
  let submits =
    List.init 100 (fun i -> (0.001 +. (0.002 *. float_of_int i), 0, [ i ]))
    @ [ (1.0, 1, [ 1000 ]) ]
  in
  let h = Harness.make ~submit:(fun () -> submits) () in
  h.run_until 0.5;
  let base1, _ = h.log_info.(1) () in
  Alcotest.(check bool) "truncated before crash" true (base1 > 0);
  h.crash 0;
  h.run_until 3.0;
  let d1 = Harness.delivered h 1 in
  Alcotest.(check int) "all 101 delivered" 101 (List.length d1);
  Alcotest.(check (list int)) "survivors identical" d1 (Harness.delivered h 2);
  Alcotest.(check bool) "post-crash command included" true
    (List.mem 1000 d1)

let test_gap_recovery_via_log_transfer () =
  (* Partition replica 2 away from the leader while traffic flows, then
     heal: replica 2 discovers the gap from a later Prepare and catches up
     through Need_log / Log_transfer.  Checkpointing is disabled so the gap
     stays recoverable from peers' logs (a truncated-past gap needs service
     snapshots, out of the crash-stop scope — see the stall test below). *)
  let submits =
    List.init 60 (fun i -> (0.001 +. (0.005 *. float_of_int i), 0, [ i ]))
  in
  let h =
    Harness.make
      ~config:{ Harness.config with checkpoint_interval = 0 }
      ~submit:(fun () -> submits)
      ()
  in
  h.run_until 0.05;
  (* Cut only leader -> replica 2 for a while (one-directional loss). *)
  h.partition (fun ~src ~dst -> not (src = 0 && dst = 2));
  h.run_until 0.2;
  h.heal ();
  h.run_until 2.0;
  let d0 = Harness.delivered h 0 in
  Alcotest.(check int) "all delivered at leader" 60 (List.length d0);
  Alcotest.(check (list int)) "replica 2 caught up" d0 (Harness.delivered h 2)

(* --- five replicas: f = 2 --- *)

let test_five_replicas_two_crashes () =
  (* n=5 tolerates two crashes; kill leaders of view 0 and view 1 in turn
     and keep committing. *)
  let h =
    Harness.make ~n:5
      ~submit:(fun () -> [ (0.01, 0, [ 1 ]); (0.5, 2, [ 2 ]); (1.5, 3, [ 3 ]) ])
      ()
  in
  h.run_until 0.1;
  h.crash 0;
  h.run_until 1.0;
  h.crash 1;
  h.run_until 3.0;
  let d2 = Harness.delivered h 2 in
  Alcotest.(check (list int)) "all three commands survive two crashes"
    [ 1; 2; 3 ] d2;
  Alcotest.(check (list int)) "replica 3 identical" d2 (Harness.delivered h 3);
  Alcotest.(check (list int)) "replica 4 identical" d2 (Harness.delivered h 4);
  Alcotest.(check bool) "view advanced at least twice" true (h.views.(2) () >= 2)

let test_five_replicas_three_crashes_no_progress () =
  (* Beyond f=2 the system must stop committing (but never diverge). *)
  let h =
    Harness.make ~n:5 ~submit:(fun () -> [ (0.3, 3, [ 9 ]) ]) ()
  in
  h.run_until 0.05;
  h.crash 0;
  h.crash 1;
  h.crash 2;
  h.run_until 2.0;
  Alcotest.(check (list int)) "no quorum, no delivery" []
    (Harness.delivered h 3);
  Alcotest.(check (list int)) "replica 4 agrees" [] (Harness.delivered h 4)

(* --- injected network faults: the protocol must mask loss, duplication
   and delay (exactly-once delivery in one total order) --- *)

let injected_submits n = List.init n (fun i -> (0.001 +. (0.004 *. float_of_int i), 0, [ i ]))

let check_exactly_once_identical h ~n ~replicas =
  let d0 = Harness.delivered h 0 in
  Alcotest.(check (list int)) "every command exactly once"
    (List.init n Fun.id) (List.sort compare d0);
  for id = 1 to replicas - 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "replica %d identical" id)
      d0 (Harness.delivered h id)
  done

let test_injected_loss_retransmit () =
  (* 20% of every message (Prepares, Acks, heartbeats, ticks) is dropped;
     heartbeat-driven gap recovery must still deliver everything, exactly
     once, in one order. *)
  let h =
    Harness.make
      ~faults:(Psmr_fault.Schedule.parse_exn "seed=21,net-loss=20")
      ~submit:(fun () -> injected_submits 20)
      ()
  in
  h.run_until 8.0;
  check_exactly_once_identical h ~n:20 ~replicas:3

let test_injected_duplication_dedup () =
  (* Every message delivered twice: commit bookkeeping must deduplicate —
     acks are idempotent, delivery fires once per committed entry. *)
  let h =
    Harness.make
      ~faults:(Psmr_fault.Schedule.parse_exn "seed=22,net-dup=100")
      ~submit:(fun () -> injected_submits 20)
      ()
  in
  h.run_until 3.0;
  check_exactly_once_identical h ~n:20 ~replicas:3

let test_injected_delay_keeps_order () =
  (* A uniform extra delay on every message shifts the run but cannot
     reorder deliveries or lose commands. *)
  let h =
    Harness.make
      ~faults:(Psmr_fault.Schedule.parse_exn "seed=23,net-delay=100:0.002")
      ~submit:(fun () -> injected_submits 20)
      ()
  in
  h.run_until 5.0;
  check_exactly_once_identical h ~n:20 ~replicas:3;
  Alcotest.(check (list int)) "submission order preserved"
    (List.init 20 Fun.id) (Harness.delivered h 0)

let test_broadcast_zero_perturbation () =
  (* An armed-but-empty plan must leave the protocol run bit-identical:
     same deliveries and the same number of simulation events. *)
  let scenario faults =
    let h = Harness.make ?faults ~submit:(fun () -> injected_submits 20) () in
    h.run_until 2.0;
    ( List.init 3 (Harness.delivered h),
      Psmr_sim.Engine.events_executed h.Harness.engine )
  in
  let reference = scenario None in
  let armed = scenario (Some (Psmr_fault.Schedule.parse_exn "seed=123")) in
  Alcotest.(check bool) "bit-identical deliveries and event count" true
    (reference = armed)

(* Property: crash the current leader at a random time while random
   submissions flow; all surviving replicas must deliver identical sequences
   with no duplicates (safety under failover). *)
let prop_safety_under_leader_crash =
  QCheck.Test.make ~name:"identical delivery despite random leader crash"
    ~count:20
    QCheck.(
      pair (int_range 10 800)
        (list_of_size Gen.(int_range 1 25) (pair (int_range 1 2) (int_range 0 1200))))
    (fun (crash_ms, submissions) ->
      (* Submissions go to replicas 1-2 so they survive the crash of 0. *)
      let submits =
        List.mapi
          (fun i (replica, at_ms) ->
            (0.001 +. (float_of_int at_ms /. 1000.0), replica, [ i ]))
          submissions
      in
      let h = Harness.make ~submit:(fun () -> submits) () in
      h.run_until (float_of_int crash_ms /. 1000.0);
      h.crash 0;
      h.run_until 5.0;
      let d1 = Harness.delivered h 1 and d2 = Harness.delivered h 2 in
      let no_dups l = List.length (List.sort_uniq compare l) = List.length l in
      d1 = d2 && no_dups d1
      (* prefix-of check against submissions is implied by integrity: *)
      && List.for_all (fun c -> c >= 0 && c < List.length submissions) d1)

(* Property: under random submission times and different latencies, all
   replicas deliver identical sequences (uniform total order + integrity). *)
let prop_total_order =
  QCheck.Test.make ~name:"replicas deliver identical sequences" ~count:25
    QCheck.(
      pair (int_range 0 1000)
        (list_of_size Gen.(int_range 1 30) (pair (int_range 0 2) (int_range 0 400))))
    (fun (lat_us, submissions) ->
      let submits =
        List.mapi
          (fun i (replica, at_ms) ->
            (0.001 +. (float_of_int at_ms /. 1000.0), replica, [ i ]))
          submissions
      in
      let h =
        Harness.make
          ~latency:(float_of_int lat_us *. 1e-6)
          ~submit:(fun () -> submits)
          ()
      in
      h.run_until 3.0;
      let d0 = Harness.delivered h 0 in
      let sorted = List.sort compare d0 in
      let expected = List.sort compare (List.init (List.length submissions) Fun.id) in
      d0 = Harness.delivered h 1
      && d0 = Harness.delivered h 2
      && sorted = expected (* integrity: each exactly once, none lost *))

let () =
  Alcotest.run "broadcast"
    [
      ( "ordering",
        [
          Alcotest.test_case "basic total order" `Quick test_total_order_basic;
          Alcotest.test_case "follower forwards" `Quick test_submit_via_follower_forwards;
          Alcotest.test_case "many batches" `Quick test_many_batches_total_order;
        ] );
      ( "batching",
        [
          Alcotest.test_case "by size" `Quick test_batching_by_size;
          Alcotest.test_case "by delay" `Quick test_batching_by_delay;
        ] );
      ( "fault-tolerance",
        [
          Alcotest.test_case "no quorum, no delivery" `Quick test_no_quorum_no_delivery;
          Alcotest.test_case "view change on leader crash" `Quick
            test_view_change_on_leader_crash;
          Alcotest.test_case "committed prefix survives" `Quick
            test_uncommitted_survive_view_change;
          Alcotest.test_case "progress after view change" `Quick
            test_delivery_after_view_change_continues;
        ] );
      ( "checkpointing",
        [
          Alcotest.test_case "truncation bounds the log" `Quick
            test_log_truncation_bounds_memory;
          Alcotest.test_case "view change after truncation" `Quick
            test_view_change_after_truncation;
          Alcotest.test_case "gap recovery via log transfer" `Quick
            test_gap_recovery_via_log_transfer;
        ] );
      ( "injected-faults",
        [
          Alcotest.test_case "loss masked by retransmission" `Quick
            test_injected_loss_retransmit;
          Alcotest.test_case "duplication deduplicated" `Quick
            test_injected_duplication_dedup;
          Alcotest.test_case "delay preserves order" `Quick
            test_injected_delay_keeps_order;
          Alcotest.test_case "empty plan is zero perturbation" `Quick
            test_broadcast_zero_perturbation;
        ] );
      ( "five-replicas",
        [
          Alcotest.test_case "two crashes tolerated" `Quick
            test_five_replicas_two_crashes;
          Alcotest.test_case "three crashes stop progress" `Quick
            test_five_replicas_three_crashes_no_progress;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_total_order;
          QCheck_alcotest.to_alcotest prop_safety_under_leader_crash;
        ] );
    ]
