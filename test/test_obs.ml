(* Tests for the observability subsystem (lib/obs): per-implementation
   counter sanity, the zero-perturbation invariant (metrics on/off cannot
   change virtual time or throughput), byte-level determinism of the
   exported metrics and trace documents, and schema acceptance of both the
   metrics JSON block and the Chrome trace-event file. *)

module Engine = Psmr_sim.Engine
module Metrics = Psmr_obs.Metrics
module Trace = Psmr_obs.Trace
module Histogram = Psmr_util.Histogram
module Registry = Psmr_cos.Registry
module Standalone = Psmr_harness.Standalone
module J = Psmr_util.Json

let impls =
  [
    (Registry.Coarse, "coarse");
    (Registry.Fine, "fine");
    (Registry.Lockfree, "lockfree");
    (Registry.Striped 8, "striped-8");
    (Registry.Fifo, "fifo");
    (Registry.Indexed, "indexed");
  ]

module Rw_cmd = struct
  type t = { idx : int; write : bool }

  let conflict a b = a.write || b.write
  let footprint c = [ (0, c.write) ]
  let pp ppf c = Format.fprintf ppf "%s%d" (if c.write then "w" else "r") c.idx
end

(* A fully drained scripted run: 200 commands through the scheduler on the
   simulated platform, shutdown joins the workers, so on return every
   submitted command has been inserted, promoted, dispatched, executed and
   removed exactly once.  That closed ledger is what the histogram-count
   assertions below lean on. *)
let commands = 200

let scripted impl ~metrics =
  let open Psmr_sim in
  let e = Engine.create () in
  let (module SP) = Sim_platform.make e Costs.default in
  let (module S : Psmr_cos.Cos_intf.S with type cmd = Rw_cmd.t) =
    Registry.instantiate_keyed impl (module SP) (module Rw_cmd)
  in
  let module Sched = Psmr_sched.Scheduler.Make (SP) (S) in
  let registry =
    if metrics then
      Some
        (Metrics.make
           ~now:(fun () -> Engine.now e)
           ~track:(fun () -> Engine.running_tag e)
           ())
    else None
  in
  Engine.spawn e (fun () ->
      let sched = Sched.start ~workers:4 ~execute:(fun _ -> SP.sleep 1e-5) () in
      let rng = Psmr_util.Rng.create ~seed:33L in
      for i = 0 to commands - 1 do
        Sched.submit sched
          { Rw_cmd.idx = i; write = Psmr_util.Rng.below_percent rng 30.0 }
      done;
      Sched.shutdown sched);
  Option.iter Metrics.enable registry;
  Fun.protect
    ~finally:(fun () -> if Option.is_some registry then Metrics.disable ())
    (fun () -> Engine.run e);
  (Engine.now e, registry)

(* --- counter sanity, one case per implementation --- *)

let test_counter_sanity impl () =
  let _, registry = scripted impl ~metrics:true in
  let m = Option.get registry in
  let c = Metrics.counters m in
  Alcotest.(check bool)
    "CAS successes <= attempts" true
    (c.Metrics.cas_successes <= c.Metrics.cas_attempts);
  Alcotest.(check bool)
    "semaphore wakes <= parks + close tokens" true
    (c.Metrics.sem_wakes <= c.Metrics.sem_parks + c.Metrics.close_tokens);
  Alcotest.(check bool)
    "lock wait and hold are non-negative" true
    (c.Metrics.lock_wait >= 0.0 && c.Metrics.lock_hold >= 0.0);
  Alcotest.(check int) "every command inserted" commands c.Metrics.insert_ops;
  Alcotest.(check int) "every command removed" commands c.Metrics.remove_ops;
  Alcotest.(check bool)
    "at least one get per command" true
    (c.Metrics.get_ops >= commands);
  Alcotest.(check int)
    "delivery->ready latency per command" commands
    (Histogram.count (Metrics.delivery_ready m));
  Alcotest.(check int)
    "ready->dispatch latency per command" commands
    (Histogram.count (Metrics.ready_dispatch m));
  Alcotest.(check int)
    "dispatch->executed latency per command" commands
    (Histogram.count (Metrics.dispatch_executed m))

(* --- the zero-perturbation invariant, per implementation ---

   Probes are plain OCaml mutation, never engine effects, so an enabled
   registry must not move a single event: the virtual end time of the
   scripted run is bit-identical with metrics on and off. *)

let test_zero_perturbation impl () =
  let t_off, _ = scripted impl ~metrics:false in
  let t_on, _ = scripted impl ~metrics:true in
  Alcotest.(check (float 0.0)) "bit-identical virtual end time" t_off t_on

(* --- the standalone harness: determinism and unchanged throughput --- *)

let spec = { Psmr_workload.Workload.write_pct = 10.0; cost = Moderate }

let standalone ~metrics ~trace () =
  Standalone.run ~impl:Registry.Lockfree ~workers:8 ~spec ~duration:0.02
    ~warmup:0.005 ~metrics ~trace ()

let test_deterministic_exports () =
  let a = standalone ~metrics:true ~trace:true () in
  let b = standalone ~metrics:true ~trace:true () in
  Alcotest.(check (float 0.0)) "same throughput" a.Standalone.kops b.kops;
  Alcotest.(check int) "same executed count" a.Standalone.executed b.executed;
  Alcotest.(check string)
    "byte-identical metrics documents"
    (Metrics.to_json (Option.get a.Standalone.metrics))
    (Metrics.to_json (Option.get b.Standalone.metrics));
  Alcotest.(check string)
    "byte-identical trace documents"
    (Trace.to_json (Option.get a.Standalone.trace))
    (Trace.to_json (Option.get b.Standalone.trace))

let test_throughput_unaffected () =
  let off = standalone ~metrics:false ~trace:false () in
  let on = standalone ~metrics:true ~trace:true () in
  Alcotest.(check (float 0.0))
    "identical throughput with observability on" off.Standalone.kops on.kops;
  Alcotest.(check int)
    "identical executed count" off.Standalone.executed on.executed

(* --- exported document schemas --- *)

let num_member name j =
  match Option.bind (J.member name j) J.as_num with
  | Some v -> v
  | None -> Alcotest.failf "missing numeric member %S" name

let test_metrics_schema () =
  let r = standalone ~metrics:true ~trace:false () in
  let doc = Metrics.to_json (Option.get r.Standalone.metrics) in
  match J.parse doc with
  | Error msg -> Alcotest.failf "metrics JSON does not parse: %s" msg
  | Ok j ->
      let counters =
        match J.member "counters" j with
        | Some c -> c
        | None -> Alcotest.fail "missing counters section"
      in
      List.iter
        (fun name -> ignore (num_member name counters))
        [
          "lock_acquisitions"; "lock_wait"; "lock_hold"; "cas_attempts";
          "cas_successes"; "sem_parks"; "sem_wakes"; "insert_ops"; "get_ops";
          "remove_ops";
        ];
      Alcotest.(check bool)
        "CAS successes <= attempts in the document" true
        (num_member "cas_successes" counters
        <= num_member "cas_attempts" counters);
      let latencies =
        match J.member "latency_virtual_seconds" j with
        | Some l -> l
        | None -> Alcotest.fail "missing latency_virtual_seconds section"
      in
      List.iter
        (fun hist ->
          let h =
            match J.member hist latencies with
            | Some h -> h
            | None -> Alcotest.failf "missing histogram %S" hist
          in
          let count = num_member "count" h in
          let p50 = num_member "p50" h in
          let p95 = num_member "p95" h in
          let p99 = num_member "p99" h in
          let p999 = num_member "p999" h in
          Alcotest.(check bool)
            (hist ^ " count positive") true (count > 0.0);
          Alcotest.(check bool)
            (hist ^ " percentiles ordered") true
            (p50 <= p95 && p95 <= p99 && p99 <= p999))
        [ "delivery_ready"; "ready_dispatch"; "dispatch_executed" ]

(* The flat snapshot ledger: every histogram contributes its full
   quantile family — the tail quantile included — and the members obey
   the same ordering as the JSON block.  A drained scripted run closes
   the ledger, so the counts are exact. *)
let test_assoc_p999_ledger () =
  let _, registry = scripted Registry.Indexed ~metrics:true in
  let kv = Metrics.assoc (Option.get registry) in
  let get name =
    match List.assoc_opt name kv with
    | Some v -> v
    | None -> Alcotest.failf "missing assoc member %S" name
  in
  List.iter
    (fun hist ->
      Alcotest.(check (float 0.0))
        (hist ^ " ledger closed") (float_of_int commands)
        (get (hist ^ "_count"));
      let p50 = get (hist ^ "_p50")
      and p95 = get (hist ^ "_p95")
      and p99 = get (hist ^ "_p99")
      and p999 = get (hist ^ "_p999")
      and maxv = get (hist ^ "_max") in
      Alcotest.(check bool)
        (hist ^ " quantile family ordered") true
        (p50 <= p95 && p95 <= p99 && p99 <= p999 && p999 <= maxv))
    [ "delivery_ready"; "ready_dispatch"; "dispatch_executed" ]

let test_trace_schema () =
  let r = standalone ~metrics:true ~trace:true () in
  let doc = Trace.to_json (Option.get r.Standalone.trace) in
  match J.parse doc with
  | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg
  | Ok j ->
      let events =
        match Option.bind (J.member "traceEvents" j) J.as_arr with
        | Some evs -> evs
        | None -> Alcotest.fail "missing traceEvents array"
      in
      Alcotest.(check bool) "trace is non-empty" true (events <> []);
      Alcotest.(check bool)
        "displayTimeUnit present" true
        (J.member "displayTimeUnit" j <> None);
      let saw_exec = ref false and saw_metadata = ref false in
      List.iter
        (fun ev ->
          let str name = Option.bind (J.member name ev) J.as_str in
          match str "ph" with
          | Some "M" ->
              saw_metadata := true;
              Alcotest.(check bool)
                "metadata carries args.name" true
                (Option.bind (J.member "args" ev) (J.member "name") <> None)
          | Some "X" ->
              if str "name" = Some "exec" then saw_exec := true;
              ignore (num_member "pid" ev);
              ignore (num_member "tid" ev);
              Alcotest.(check bool)
                "slice timestamps are sane" true
                (num_member "ts" ev >= 0.0 && num_member "dur" ev >= 0.0)
          | _ -> Alcotest.fail "unexpected event phase (want M or X)")
        events;
      Alcotest.(check bool) "saw execution slices" true !saw_exec;
      Alcotest.(check bool) "saw track metadata" true !saw_metadata

(* --- metrics under the model checker ---

   Virtual time never advances on the check platform, so the registry
   counts decision points instead; the counters still obey the same
   arithmetic invariants. *)

let test_check_platform_metrics () =
  let sc =
    Psmr_checker.Cos_check.scenario
      ~target:(Psmr_checker.Cos_check.Impl Registry.Lockfree) ~workers:2
      ~commands:6 ~write_pct:50.0 ~drain_before_close:true ~workload_seed:3L ()
  in
  let rng = Psmr_util.Rng.create ~seed:5L in
  let o =
    Psmr_checker.Cos_check.run_schedule ~metrics:true sc
      ~pick:(fun ~last:_ tags -> Psmr_util.Rng.int rng (Array.length tags))
  in
  Alcotest.(check bool) "schedule completed" true o.Psmr_checker.Cos_check.completed;
  let get name =
    match List.assoc_opt name o.Psmr_checker.Cos_check.metrics with
    | Some v -> v
    | None -> Alcotest.failf "missing metric %S" name
  in
  Alcotest.(check bool)
    "CAS successes <= attempts" true
    (get "cas_successes" <= get "cas_attempts");
  Alcotest.(check (float 0.0)) "every command inserted" 6.0 (get "insert_ops");
  Alcotest.(check (float 0.0)) "every command removed" 6.0 (get "remove_ops");
  (* The checker's harness calls get/remove itself (no scheduler layer), so
     the execution histogram stays empty; the two COS-recorded ones see
     every command. *)
  Alcotest.(check (float 0.0))
    "every promotion measured" 6.0
    (get "delivery_ready_count");
  Alcotest.(check (float 0.0))
    "every dispatch measured" 6.0
    (get "ready_dispatch_count")

(* The committed benchmark report must carry the engine microbenchmark
   section (bench/engine_churn.ml): a non-empty [sim_events_per_wall_second]
   array whose rows each have a name and positive, mutually consistent
   [events] / [wall_seconds] / [events_per_second] fields, including the
   [churn_10m] row the fast-path acceptance criterion is read from.  The
   file is a declared dune dep, so the path resolves inside the sandbox. *)
let test_bench_engine_schema () =
  (* dune runtest runs from test/ in the sandbox; dune exec from the
     project root. *)
  let path =
    if Sys.file_exists "../BENCH_cos.json" then "../BENCH_cos.json"
    else "BENCH_cos.json"
  in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc =
    match J.parse s with
    | Ok d -> d
    | Error e -> Alcotest.failf "BENCH_cos.json does not parse: %s" e
  in
  let rows =
    match J.member "sim_events_per_wall_second" doc with
    | Some (J.Arr rows) -> rows
    | _ -> Alcotest.fail "missing sim_events_per_wall_second array"
  in
  Alcotest.(check bool) "at least one engine row" true (rows <> []);
  let names =
    List.map
      (fun row ->
        let name =
          match Option.bind (J.member "name" row) J.as_str with
          | Some n -> n
          | None -> Alcotest.fail "engine row missing string \"name\""
        in
        let num field =
          match Option.bind (J.member field row) J.as_num with
          | Some v when v > 0.0 -> v
          | Some _ -> Alcotest.failf "row %s: %S not positive" name field
          | None -> Alcotest.failf "row %s: missing numeric %S" name field
        in
        let events = num "events" in
        let wall = num "wall_seconds" in
        let eps = num "events_per_second" in
        let derived = events /. wall in
        if abs_float (eps -. derived) /. derived > 0.05 then
          Alcotest.failf
            "row %s: events_per_second %.0f inconsistent with events/wall %.0f"
            name eps derived;
        name)
      rows
  in
  Alcotest.(check bool)
    "churn_10m row present" true
    (List.mem "churn_10m" names)

(* The committed report must also carry the partitioned-ordering grid
   (bench/main.ml [part_sim_kops], produced by Part_bench): well-formed
   partitions × workers rows, the ISSUE-9 acceptance ratio (>= 1.7x at 4
   partitions vs 1 at w32 on a <= 5%-cross keyed workload) both present as
   a scalar and consistent with the rows it was derived from, and the
   100%-cross rows degrading gracefully (throughput above zero, no view
   changes, no unresolved rendezvous pile-up masked by a hole flood).
   Simulated kops are virtual-time deterministic, so these are stable
   regression anchors, not flaky wall-clock readings. *)
let test_bench_part_schema () =
  let path =
    if Sys.file_exists "../BENCH_cos.json" then "../BENCH_cos.json"
    else "BENCH_cos.json"
  in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc =
    match J.parse s with
    | Ok d -> d
    | Error e -> Alcotest.failf "BENCH_cos.json does not parse: %s" e
  in
  let rows =
    match J.member "part_sim_kops" doc with
    | Some (J.Arr rows) -> rows
    | _ -> Alcotest.fail "missing part_sim_kops array"
  in
  Alcotest.(check bool) "at least one grid row" true (rows <> []);
  let field row name =
    match Option.bind (J.member name row) J.as_num with
    | Some v -> v
    | None -> Alcotest.failf "grid row missing numeric %S" name
  in
  let str_field row name =
    match Option.bind (J.member name row) J.as_str with
    | Some v -> v
    | None -> Alcotest.failf "grid row missing string %S" name
  in
  List.iter
    (fun row ->
      let partitions = field row "partitions" in
      let replicas = field row "replicas" in
      let workers = field row "workers" in
      let kops = field row "kops" in
      ignore (str_field row "cost");
      if partitions < 1.0 || workers < 1.0 then
        Alcotest.fail "grid row with nonpositive partitions/workers";
      if replicas < partitions then
        Alcotest.fail "grid row with fewer replicas than partitions";
      if kops <= 0.0 then Alcotest.fail "grid row with nonpositive kops";
      List.iter
        (fun f ->
          if field row f < 0.0 then Alcotest.failf "negative %S in grid row" f)
        [ "cross_pct"; "singles"; "crosses"; "holes"; "merge_pending"; "views" ])
    rows;
  let find ~partitions ~workers ~max_cross =
    List.find_opt
      (fun row ->
        field row "partitions" = float_of_int partitions
        && field row "workers" = float_of_int workers
        && field row "cross_pct" <= max_cross
        && str_field row "cost" = "light")
      rows
  in
  let p1 =
    match find ~partitions:1 ~workers:32 ~max_cross:5.0 with
    | Some r -> r
    | None -> Alcotest.fail "no 1-partition w32 low-cross row"
  in
  let p4 =
    match find ~partitions:4 ~workers:32 ~max_cross:5.0 with
    | Some r -> r
    | None -> Alcotest.fail "no 4-partition w32 low-cross row"
  in
  let ratio = field p4 "kops" /. field p1 "kops" in
  Alcotest.(check bool)
    (Printf.sprintf "acceptance ratio %.2f >= 1.7" ratio)
    true (ratio >= 1.7);
  let speedup =
    match Option.bind (J.member "speedup_w32_part4_vs_part1" doc) J.as_num with
    | Some v -> v
    | None -> Alcotest.fail "missing speedup_w32_part4_vs_part1 scalar"
  in
  if abs_float (speedup -. ratio) > 0.011 then
    Alcotest.failf "speedup scalar %.2f inconsistent with grid rows (%.2f)"
      speedup ratio;
  let all_cross =
    List.filter (fun row -> field row "cross_pct" = 100.0) rows
  in
  Alcotest.(check bool) "a 100%-cross row exists" true (all_cross <> []);
  List.iter
    (fun row ->
      Alcotest.(check bool)
        "100%-cross row made progress" true
        (field row "kops" > 0.0);
      Alcotest.(check (float 0.0))
        "100%-cross row is view-change free" 0.0 (field row "views"))
    all_cross

(* The committed report must also carry the open-loop latency-under-load
   grid (bench/main.ml [open_loop], produced by Load_bench over the
   lib/traffic arrival/scenario stack): one row per scheduler family on
   the Zipfian YCSB-A scenario, each with a non-empty offered-load sweep
   carrying the full quantile family plus drop rate per step and a
   detected saturation knee, and the knees ordered consistently with the
   closed-loop peaks — the early-optimistic and partitioned families
   saturate strictly above the coarse baseline.  Simulated virtual-time
   latencies are deterministic, so these are stable regression anchors. *)
let test_bench_open_loop_schema () =
  let path =
    if Sys.file_exists "../BENCH_cos.json" then "../BENCH_cos.json"
    else "BENCH_cos.json"
  in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc =
    match J.parse s with
    | Ok d -> d
    | Error e -> Alcotest.failf "BENCH_cos.json does not parse: %s" e
  in
  let rows =
    match J.member "open_loop" doc with
    | Some (J.Arr rows) -> rows
    | _ -> Alcotest.fail "missing open_loop array"
  in
  let num row name =
    match Option.bind (J.member name row) J.as_num with
    | Some v -> v
    | None -> Alcotest.failf "open_loop row missing numeric %S" name
  in
  let knee impl =
    let row =
      match
        List.find_opt
          (fun row ->
            Option.bind (J.member "impl" row) J.as_str = Some impl)
          rows
      with
      | Some row -> row
      | None -> Alcotest.failf "no open_loop row for %S" impl
    in
    Alcotest.(check bool)
      (impl ^ " scenario is zipfian YCSB-A") true
      (Option.bind (J.member "scenario" row) J.as_str = Some "ycsb_a"
      && num row "theta" >= 0.9);
    let steps =
      match J.member "steps" row with
      | Some (J.Arr (_ :: _ as steps)) -> steps
      | _ -> Alcotest.failf "row %s: missing non-empty steps" impl
    in
    List.iter
      (fun step ->
        let p50 = num step "p50" in
        let p99 = num step "p99" in
        let p999 = num step "p999" in
        let drop = num step "drop_rate" in
        ignore (num step "offered_kops");
        ignore (num step "kops");
        Alcotest.(check bool)
          (impl ^ " step quantiles ordered") true
          (p50 <= p99 && p99 <= p999);
        Alcotest.(check bool)
          (impl ^ " drop rate in [0,1]") true
          (drop >= 0.0 && drop <= 1.0))
      steps;
    num row "knee_kops"
  in
  let coarse = knee "coarse" in
  ignore (knee "indexed");
  let early_opt = knee "early_opt" in
  let part4 = knee "part4" in
  Alcotest.(check bool)
    (Printf.sprintf "early_opt knee %.0f > coarse knee %.0f" early_opt coarse)
    true (early_opt > coarse);
  Alcotest.(check bool)
    (Printf.sprintf "part4 knee %.0f > coarse knee %.0f" part4 coarse)
    true (part4 > coarse)

(* Memo-key coverage for the partition grid (the PR-8 lesson: a %.0f in a
   memo key collapsed distinct fractional rates into one simulated point).
   [Part_bench.config_label] must keep every grid dimension — partitions
   included — and fractional workload rates distinct. *)
let test_part_config_label () =
  let module PB = Psmr_harness.Part_bench in
  let base = Psmr_workload.Workload.Keyed.low_conflict in
  let label ?(partitions = 4) ?(workers = 32) ?(batch = 16) spec =
    PB.config_label ~partitions
      ~replicas:(PB.default_replicas ~partitions)
      ~workers ~batch spec
  in
  let distinct what a b =
    if String.equal a b then
      Alcotest.failf "%s collide on memo key %S" what a
  in
  distinct "partition counts" (label ~partitions:1 base) (label ~partitions:4 base);
  distinct "worker counts" (label ~workers:8 base) (label ~workers:32 base);
  distinct "batch sizes" (label ~batch:1 base) (label ~batch:16 base);
  (* The %.0f collision class: rates that agree after integer rounding. *)
  distinct "fractional cross rates"
    (label { base with cross_pct = 0.1 })
    (label { base with cross_pct = 0.4 });
  distinct "fractional write rates"
    (label { base with write_pct = 2.0 })
    (label { base with write_pct = 2.4 });
  distinct "fractional mis rates"
    (label { base with mis_pct = 0.1 })
    (label { base with mis_pct = 0.25 });
  (* Replica count is part of the key even when derived. *)
  let l = label base in
  List.iter
    (fun sub ->
      let n = String.length sub in
      let rec scan i =
        i + n <= String.length l
        && (String.equal (String.sub l i n) sub || scan (i + 1))
      in
      Alcotest.(check bool)
        (Printf.sprintf "label %S mentions %S" l sub)
        true (scan 0))
    [ "part4"; "n5"; "w32"; "b16" ]

let per_impl name f =
  List.map
    (fun (impl, label) ->
      Alcotest.test_case (Printf.sprintf "%s [%s]" name label) `Quick (f impl))
    impls

let () =
  Alcotest.run "obs"
    [
      ("counter-sanity", per_impl "closed ledger" test_counter_sanity);
      ("zero-perturbation", per_impl "metrics off = on" test_zero_perturbation);
      ( "determinism",
        [
          Alcotest.test_case "p999 snapshot ledger" `Quick
            test_assoc_p999_ledger;
          Alcotest.test_case "byte-identical exports" `Quick
            test_deterministic_exports;
          Alcotest.test_case "throughput unaffected" `Quick
            test_throughput_unaffected;
        ] );
      ( "schemas",
        [
          Alcotest.test_case "metrics JSON block" `Quick test_metrics_schema;
          Alcotest.test_case "chrome trace file" `Quick test_trace_schema;
          Alcotest.test_case "bench report engine rows" `Quick
            test_bench_engine_schema;
          Alcotest.test_case "bench report partition grid" `Quick
            test_bench_part_schema;
          Alcotest.test_case "bench report open-loop grid" `Quick
            test_bench_open_loop_schema;
          Alcotest.test_case "partition grid memo keys" `Quick
            test_part_config_label;
        ] );
      ( "check-platform",
        [
          Alcotest.test_case "decision-point metrics" `Quick
            test_check_platform_metrics;
        ] );
    ]
