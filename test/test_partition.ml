(* Partitioned atomic broadcast: Pmerge unit and property tests, the
   partitioned replica deployments (cross-partition transfers, sequencer
   crash recovery), the partitions=1 regression against the single-abcast
   delivery order, and the golden merged-order traces. *)

module Pmerge = Psmr_broadcast.Pmerge

(* --- Pmerge unit helpers --- *)

(* A tiny command universe: commands are ints; [touched] maps a command to
   its ascending touched-partition array. *)
type mcmd = { cid : int; touched : int array }

let entry_of c =
  if Array.length c.touched = 1 then Pmerge.Single c
  else Pmerge.Cross { uid = c.cid; parts = c.touched; cmd = c }

(* Build the per-partition streams from per-partition command orders. *)
let streams_of (orders : mcmd list array) =
  Array.map (fun cs -> List.map entry_of cs) orders

(* Push every remaining entry, choosing the next stream with [pick]
   (invoked with the list of nonempty stream indices). *)
let run_interleaving ?(no_barrier = false) ~partitions ~orders pick =
  let out = ref [] in
  let t =
    Pmerge.create ~no_barrier ~partitions ~emit:(fun e -> out := e :: !out) ()
  in
  let rem = Array.map ref (streams_of orders) in
  let rec loop () =
    let nonempty =
      List.filter (fun p -> !(rem.(p)) <> []) (List.init partitions Fun.id)
    in
    match nonempty with
    | [] -> ()
    | ps ->
        let p = pick ps in
        (match !(rem.(p)) with
        | e :: tl ->
            rem.(p) := tl;
            Pmerge.push t ~part:p e
        | [] -> assert false);
        loop ()
  in
  loop ();
  (t, List.rev !out)

let emitted_cids out = List.map (fun (e : mcmd Pmerge.emitted) -> e.cmd.cid) out

(* The SMR-relevant projection: commands touching partition [p], in
   emission order.  Replicas must agree on this for every p; the full
   interleaving across unrelated partitions is allowed to differ. *)
let projection out p =
  List.filter_map
    (fun (e : mcmd Pmerge.emitted) ->
      if Array.exists (fun q -> q = p) e.cmd.touched then Some e.cmd.cid
      else None)
    out

let single p cid = { cid; touched = [| p |] }
let cross parts cid = { cid; touched = parts }

(* --- unit tests --- *)

let test_singles_passthrough () =
  let orders = [| [ single 0 0; single 0 1 ]; [ single 1 2 ] |] in
  let t, out = run_interleaving ~partitions:2 ~orders List.hd in
  Alcotest.(check (list int)) "all emitted in stream order" [ 0; 1; 2 ]
    (emitted_cids out);
  Alcotest.(check int) "nothing pending" 0 (Pmerge.pending t);
  Alcotest.(check int) "no crosses" 0 (Pmerge.crosses t);
  Alcotest.(check int) "streams counted" 2 (Pmerge.pushed t ~part:0)

let test_rendezvous_waits_for_all_streams () =
  (* X touches {0,1}; a single ahead of it in stream 1 must emit first even
     when X's stream-0 copy arrives long before. *)
  let x = cross [| 0; 1 |] 7 in
  let orders = [| [ x ]; [ single 1 1; x ] |] in
  (* Arrival: X@0 first, then stream 1 entirely. *)
  let t, out = run_interleaving ~partitions:2 ~orders List.hd in
  Alcotest.(check (list int)) "single before the rendezvous" [ 1; 7 ]
    (emitted_cids out);
  Alcotest.(check int) "one cross" 1 (Pmerge.crosses t);
  Alcotest.(check int) "no tie-breaks" 0 (Pmerge.holes t);
  let em = List.nth out 1 in
  Alcotest.(check int) "attributed to designated partition" 0 em.Pmerge.part;
  Alcotest.(check bool) "flagged cross" true em.Pmerge.cross

let all_interleavings ~partitions ~orders =
  (* Enumerate every arrival interleaving (small cases only). *)
  let rec go rem acc =
    let nonempty =
      List.filter (fun p -> List.nth rem p <> []) (List.init partitions Fun.id)
    in
    if nonempty = [] then [ List.rev acc ]
    else
      List.concat_map
        (fun p ->
          let rem' =
            List.mapi (fun q l -> if q = p then List.tl l else l) rem
          in
          go rem' (p :: acc))
        nonempty
  in
  go (Array.to_list (Array.map (fun l -> l) orders)) []
  |> List.map (fun choice ->
         let i = ref (-1) in
         run_interleaving ~partitions ~orders (fun _ ->
             incr i;
             List.nth choice !i))

let test_cycle_tiebreak_deterministic () =
  (* Streams order two {0,1} crosses inconsistently: a genuine wedge.  All
     6 arrival interleavings must agree on the emission order, break the
     cycle exactly once, and leave nothing pending. *)
  let x = cross [| 0; 1 |] 0 and y = cross [| 0; 1 |] 1 in
  let orders = [| [ x; y ]; [ y; x ] |] in
  let runs = all_interleavings ~partitions:2 ~orders in
  Alcotest.(check int) "6 interleavings" 6 (List.length runs);
  let reference = emitted_cids (snd (List.hd runs)) in
  (* ts(x) = ts(y) = 1; uid breaks the tie in favour of x = 0. *)
  Alcotest.(check (list int)) "victim is the smallest uid" [ 0; 1 ] reference;
  List.iter
    (fun (t, out) ->
      Alcotest.(check (list int)) "same order" reference (emitted_cids out);
      Alcotest.(check int) "one tie-break" 1 (Pmerge.holes t);
      Alcotest.(check int) "drained" 0 (Pmerge.pending t))
    runs

let test_no_barrier_is_arrival_dependent () =
  (* The planted bug: with the rendezvous skipped, the same streams produce
     different partition-1 projections under different arrivals. *)
  let a = cross [| 0; 1 |] 0 in
  let orders = [| [ a ]; [ single 1 1; a ] |] in
  let _, out_a0 =
    run_interleaving ~no_barrier:true ~partitions:2 ~orders List.hd
  in
  let _, out_b0 =
    run_interleaving ~no_barrier:true ~partitions:2 ~orders (fun ps ->
        List.nth ps (List.length ps - 1))
  in
  Alcotest.(check bool) "projections diverge" true
    (projection out_a0 1 <> projection out_b0 1);
  (* The sound merge agrees on both interleavings. *)
  let _, sa = run_interleaving ~partitions:2 ~orders List.hd in
  let _, sb =
    run_interleaving ~partitions:2 ~orders (fun ps ->
        List.nth ps (List.length ps - 1))
  in
  Alcotest.(check (list int)) "sound merge agrees" (projection sa 1)
    (projection sb 1)

let test_push_validation () =
  let t = Pmerge.create ~partitions:2 ~emit:(fun _ -> ()) () in
  Alcotest.check_raises "cross must touch >= 2"
    (Invalid_argument "Pmerge.push: cross entry must touch >= 2 partitions")
    (fun () ->
      Pmerge.push t ~part:0 (Pmerge.Cross { uid = 0; parts = [| 0 |]; cmd = 0 }));
  Alcotest.check_raises "part range" (Invalid_argument "Pmerge.push")
    (fun () -> Pmerge.push t ~part:2 (Pmerge.Single 0))

(* --- qcheck: arrival-interleaving determinism of the sound merge --- *)

(* One random scenario: P partitions, K commands with a given cross ratio,
   independently shuffled per-partition sequencer orders (inconsistent
   cross orders arise naturally), compared across random arrival
   interleavings. *)
let gen_scenario =
  QCheck.Gen.(
    let* partitions = int_range 2 4 in
    let* k = int_range 10 40 in
    let* cross_pct = oneofl [ 0; 10; 50; 100 ] in
    let* seed = int_bound 1_000_000 in
    return (partitions, k, cross_pct, seed))

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let build_orders ~partitions ~k ~cross_pct rng =
  let cmds =
    List.init k (fun cid ->
        if Random.State.int rng 100 < cross_pct then begin
          (* A random subset of 2..partitions partitions, ascending. *)
          let size = 2 + Random.State.int rng (partitions - 1) in
          let all = shuffle rng (List.init partitions Fun.id) in
          let parts =
            List.filteri (fun i _ -> i < size) all |> List.sort compare
          in
          cross (Array.of_list parts) cid
        end
        else single (Random.State.int rng partitions) cid)
  in
  Array.init partitions (fun p ->
      shuffle rng
        (List.filter (fun c -> Array.exists (fun q -> q = p) c.touched) cmds))

let random_pick rng ps = List.nth ps (Random.State.int rng (List.length ps))

let prop_merge_deterministic (partitions, k, cross_pct, seed) =
  let rng = Random.State.make [| seed |] in
  let orders = build_orders ~partitions ~k ~cross_pct rng in
  let runs =
    List.init 6 (fun i ->
        let arng = Random.State.make [| seed; i |] in
        run_interleaving ~partitions ~orders (random_pick arng))
  in
  let _, ref_out = List.hd runs in
  let total = List.length (emitted_cids ref_out) in
  total = k
  && List.for_all
       (fun (t, out) ->
         Pmerge.pending t = 0
         && List.length (emitted_cids out) = k
         && List.sort compare (emitted_cids out) = List.init k Fun.id
         && List.for_all
              (fun p -> projection out p = projection ref_out p)
              (List.init partitions Fun.id))
       runs

let qcheck_merge_deterministic =
  QCheck.Test.make ~count:300 ~name:"pmerge: per-partition projections agree"
    (QCheck.make gen_scenario) prop_merge_deterministic

(* All-cross burst: every command touches >= 2 partitions; the merge must
   still drain (no deadlock) and agree across arrivals. *)
let qcheck_all_cross_drains =
  QCheck.Test.make ~count:150 ~name:"pmerge: 100% cross bursts drain"
    (QCheck.make
       QCheck.Gen.(
         let* partitions = int_range 2 4 in
         let* k = int_range 5 25 in
         let* seed = int_bound 1_000_000 in
         return (partitions, k, 100, seed)))
    prop_merge_deterministic

let test_rotational_wedge_regression () =
  (* Regression for a bug found while developing the merge: three crosses
     all touching {0,1,2}, rotationally wedged (streams 1,2,0 / 2,0,1 /
     0,1,2).  Breaking a partially seen sub-cycle let the victim depend on
     arrival order (some interleavings broke {1,2} and emitted 1 before 0);
     the complete-information rule picks victim 0 everywhere. *)
  let c cid = cross [| 0; 1; 2 |] cid in
  let orders =
    [| [ c 1; c 2; c 0 ]; [ c 2; c 0; c 1 ]; [ c 0; c 1; c 2 ] |]
  in
  let runs = all_interleavings ~partitions:3 ~orders in
  List.iter
    (fun (t, out) ->
      Alcotest.(check (list int)) "canonical victim order" [ 0; 1; 2 ]
        (emitted_cids out);
      Alcotest.(check int) "drained" 0 (Pmerge.pending t))
    runs

(* --- Partitioned broadcast on the simulator --- *)

(* An n-replica partitioned-broadcast harness mirroring test_broadcast's
   [Harness]: per-replica event-loop + ticker processes over the simulated
   network, submissions scheduled at virtual times.  Commands are ints;
   each submission carries its footprint. *)
module Part_sim = struct
  open Psmr_broadcast

  type t = {
    emissions : int Pmerge.emitted list ref array;
    views_installed : (unit -> int) array;
    leader : part:int -> int;  (* as replica 0 sees it *)
    crash : int -> unit;
    run_until : float -> unit;
    merge_pending : int -> int;
    crosses : int -> int;
    holes : int -> int;
  }

  let config =
    {
      Abcast.batch_max = 8;
      batch_delay = 1e-3;
      heartbeat_interval = 5e-3;
      election_timeout = 50e-3;
      checkpoint_interval = 16;
    }

  (* submit: (at, replica, footprint, cmd) list *)
  let make ?(n = 3) ?(partitions = 2) ?(latency = 1e-4) ?(submit = []) () =
    let engine = Psmr_sim.Engine.create () in
    let (module SP) = Psmr_sim.Sim_platform.make engine Psmr_sim.Costs.zero in
    let module Net = Psmr_net.Network.Make (SP) in
    let module Part = Partition.Make (SP) in
    let net = Net.create ~latency:(fun ~src:_ ~dst:_ -> latency) ~nodes:n () in
    let emissions = Array.init n (fun _ -> ref []) in
    let eps =
      Array.init n (fun id ->
          Part.create ~config ~partitions ~id ~n
            ~send:(fun dst w -> Net.send net ~src:id ~dst (`PProto w))
            ~deliver:(fun em -> emissions.(id) := em :: !(emissions.(id)))
            ())
    in
    Array.iteri
      (fun id ep ->
        Psmr_sim.Engine.spawn engine (fun () ->
            let rec loop () =
              match Net.recv net id with
              | None -> ()
              | Some { src; payload; _ } ->
                  (match payload with
                  | `PProto w -> Part.handle ep ~src w
                  | `Tick -> Part.tick ep);
                  loop ()
            in
            loop ());
        Psmr_sim.Engine.spawn engine (fun () ->
            let rec tick_loop () =
              if not (Net.is_crashed net id) then begin
                SP.sleep 1e-3;
                Net.send net ~src:id ~dst:id `Tick;
                tick_loop ()
              end
            in
            tick_loop ()))
      eps;
    List.iter
      (fun (at, replica, fp, cmd) ->
        Psmr_sim.Engine.spawn engine ~delay:at (fun () ->
            Part.submit eps.(replica) ~footprint:fp cmd))
      submit;
    {
      emissions;
      views_installed = Array.map (fun ep () -> Part.views_installed ep) eps;
      leader = (fun ~part -> Part.leader eps.(0) ~part);
      crash = (fun id -> Net.crash net id);
      run_until = (fun t -> Psmr_sim.Engine.run ~until:t engine);
      merge_pending = (fun id -> Part.merge_pending eps.(id));
      crosses = (fun id -> Part.crosses eps.(id));
      holes = (fun id -> Part.holes eps.(id));
    }

  let emitted t id = List.rev !(t.emissions.(id))
  let emitted_cmds t id = List.map (fun (e : _ Pmerge.emitted) -> e.cmd) (emitted t id)
end

(* A plain single-abcast run with the same schedule, for the partitions=1
   regression: delivered command sequence per replica. *)
let run_single_abcast ~n ~latency ~submit ~until =
  let open Psmr_broadcast in
  let engine = Psmr_sim.Engine.create () in
  let (module SP) = Psmr_sim.Sim_platform.make engine Psmr_sim.Costs.zero in
  let module Net = Psmr_net.Network.Make (SP) in
  let module Ab = Abcast.Make (SP) in
  let net = Net.create ~latency:(fun ~src:_ ~dst:_ -> latency) ~nodes:n () in
  let deliveries = Array.init n (fun _ -> ref []) in
  let abs =
    Array.init n (fun id ->
        Ab.create ~config:Part_sim.config ~id ~n
          ~send:(fun dst msg -> Net.send net ~src:id ~dst (`Proto msg))
          ~deliver:(fun batch ->
            Array.iter (fun c -> deliveries.(id) := c :: !(deliveries.(id))) batch)
          ())
  in
  Array.iteri
    (fun id ab ->
      Psmr_sim.Engine.spawn engine (fun () ->
          let rec loop () =
            match Net.recv net id with
            | None -> ()
            | Some { src; payload; _ } ->
                (match payload with
                | `Proto m -> Ab.handle ab ~src m
                | `Tick -> Ab.tick ab);
                loop ()
          in
          loop ());
      Psmr_sim.Engine.spawn engine (fun () ->
          let rec tick_loop () =
            if not (Net.is_crashed net id) then begin
              SP.sleep 1e-3;
              Net.send net ~src:id ~dst:id `Tick;
              tick_loop ()
            end
          in
          tick_loop ()))
    abs;
  List.iter
    (fun (at, replica, _fp, cmd) ->
      Psmr_sim.Engine.spawn engine ~delay:at (fun () ->
          Ab.submit abs.(replica) [| cmd |]))
    submit;
  Psmr_sim.Engine.run ~until engine;
  Array.map (fun d -> List.rev !d) deliveries

let test_p1_matches_single_abcast () =
  (* With one partition there is no sharding and no merging left: the
     delivered sequence must be byte-identical (same virtual-time schedule,
     same batching config) to the unpartitioned abcast's. *)
  let submit =
    List.init 25 (fun i ->
        (0.001 +. (0.003 *. float_of_int i), i mod 3, [ (i, true) ], i))
  in
  let single = run_single_abcast ~n:3 ~latency:1e-4 ~submit ~until:1.0 in
  let h = Part_sim.make ~partitions:1 ~submit () in
  h.run_until 1.0;
  for id = 0 to 2 do
    Alcotest.(check (list int))
      (Printf.sprintf "replica %d sequence identical" id)
      single.(id)
      (Part_sim.emitted_cmds h id);
    List.iter
      (fun (e : _ Pmerge.emitted) ->
        Alcotest.(check bool) "no crosses under p=1" false e.cross)
      (Part_sim.emitted h id)
  done

(* Mixed workload for the agreement tests: singles on both partitions from
   all replicas plus cross-partition commands; footprints are (key, write)
   with partition = key mod 2. *)
let mixed_submit () =
  List.concat
    (List.init 30 (fun i ->
         let at = 0.001 +. (0.002 *. float_of_int i) in
         let replica = i mod 3 in
         if i mod 5 = 0 then
           (* cross: touches keys 0 and 1 -> partitions {0,1} *)
           [ (at, replica, [ (0, true); (1, true) ], 1000 + i) ]
         else [ (at, replica, [ (i mod 2, true) ], i) ]))

let sim_projection h ~touched id p =
  List.filter
    (fun (e : int Pmerge.emitted) ->
      List.exists (fun q -> q = p) (touched e.cmd))
    (Part_sim.emitted h id)
  |> List.map (fun (e : int Pmerge.emitted) -> e.cmd)

let mixed_touched c = if c >= 1000 then [ 0; 1 ] else [ c mod 2 ]

let test_replicas_agree_on_projections () =
  let submit = mixed_submit () in
  let h = Part_sim.make ~partitions:2 ~submit () in
  h.run_until 1.0;
  let total = List.length submit in
  for id = 0 to 2 do
    let cmds = List.sort compare (Part_sim.emitted_cmds h id) in
    Alcotest.(check int)
      (Printf.sprintf "replica %d emitted all exactly once" id)
      total (List.length cmds);
    Alcotest.(check int) "merge drained" 0 (h.merge_pending id);
    Alcotest.(check bool) "crosses flowed" true (h.crosses id > 0)
  done;
  for p = 0 to 1 do
    let ref_proj = sim_projection h ~touched:mixed_touched 0 p in
    for id = 1 to 2 do
      Alcotest.(check (list int))
        (Printf.sprintf "partition %d projection: replica %d = replica 0" p id)
        ref_proj
        (sim_projection h ~touched:mixed_touched id p)
    done
  done

let test_sequencer_crash_recovers_partition () =
  (* Partition 1's leadership starts at replica 1 (leader_offset).  Crash
     it before any partition-1 traffic: the partition must elect a new
     sequencer and order the post-crash commands on both survivors, while
     partition 0 (led by replica 0) is never disturbed. *)
  let submit =
    List.init 20 (fun i ->
        (* all traffic after the 50ms election timeout has fired *)
        (0.3 +. (0.002 *. float_of_int i), 0, [ (i mod 2, true) ], i))
  in
  let h = Part_sim.make ~partitions:2 ~submit () in
  h.run_until 0.01;
  Alcotest.(check int) "partition 1 initially led by replica 1" 1
    (h.leader ~part:1);
  h.crash 1;
  h.run_until 2.0;
  Alcotest.(check bool) "a view change was installed" true
    (h.views_installed.(0) () > 0);
  Alcotest.(check bool) "partition 1 has a new leader" true
    (h.leader ~part:1 <> 1);
  let expect = List.sort compare (List.map (fun (_, _, _, c) -> c) submit) in
  List.iter
    (fun id ->
      Alcotest.(check (list int))
        (Printf.sprintf "replica %d ordered everything after the crash" id)
        expect
        (List.sort compare (Part_sim.emitted_cmds h id)))
    [ 0; 2 ];
  for p = 0 to 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "survivors agree on partition %d" p)
      (sim_projection h ~touched:(fun c -> [ c mod 2 ]) 0 p)
      (sim_projection h ~touched:(fun c -> [ c mod 2 ]) 2 p)
  done

(* --- golden merged-order traces --- *)

(* The simulator is deterministic, so replica 0's full emission trace on a
   pinned workload is a constant; pin its digest.  A change here means the
   merge (or the sequencer protocol under it) reordered something —
   deliberate changes must re-pin and say why. *)
let render_trace ems =
  List.map
    (fun (e : int Pmerge.emitted) ->
      Printf.sprintf "p%d%s%d" e.Pmerge.part (if e.cross then "x" else "s") e.cmd)
    ems
  |> String.concat ";"

let test_golden_trace () =
  let h = Part_sim.make ~partitions:2 ~submit:(mixed_submit ()) () in
  h.run_until 1.0;
  let digest = Digest.to_hex (Digest.string (render_trace (Part_sim.emitted h 0))) in
  (* Re-pinned when Abcast gained the eager commit broadcast (leaders now
     announce an advanced commit point immediately instead of waiting for
     the next Prepare or heartbeat): follower deliveries moved earlier in
     virtual time, shifting the simulated submission/delivery interleave
     and with it the pinned trace.  Projections stayed consistent across
     replicas throughout — only the (deterministic) timing changed. *)
  Alcotest.(check string) "pinned merged-order digest"
    "18c1642d2c48fd428115e89ecf56b644" digest;
  (* Projections must digest identically on every replica, pinned or not. *)
  let proj_digest id =
    List.map
      (fun p ->
        Digest.to_hex
          (Digest.string
             (String.concat ","
                (List.map string_of_int
                   (sim_projection h ~touched:mixed_touched id p)))))
      [ 0; 1 ]
  in
  let d0 = proj_digest 0 in
  Alcotest.(check (list string)) "replica 1 projections" d0 (proj_digest 1);
  Alcotest.(check (list string)) "replica 2 projections" d0 (proj_digest 2)

(* --- partitioned replica deployments (real threads) --- *)

module RP = Psmr_platform.Real_platform
module KV_smr = Psmr_replica.Replica.Make (RP) (Psmr_app.Kv_store)
module Bank_smr = Psmr_replica.Replica.Make (RP) (Psmr_app.Bank)

let fast_abcast =
  {
    Psmr_broadcast.Abcast.batch_max = 16;
    batch_delay = 1e-3;
    heartbeat_interval = 5e-3;
    election_timeout = 100e-3;
    checkpoint_interval = 64;
  }

let kv_deployment ?(clients = 2) ~mode () =
  let services = Array.make 3 None in
  let make_service id =
    let s = Psmr_app.Kv_store.create ~capacity:64 in
    services.(id) <- Some s;
    s
  in
  let cfg =
    {
      (KV_smr.Deployment.default_config ~make_service ()) with
      clients;
      mode;
      abcast = fast_abcast;
      tick_interval = 1e-3;
      client_timeout = 0.4;
    }
  in
  let d = KV_smr.Deployment.create cfg in
  KV_smr.Deployment.start d;
  (d, services)

let test_part_kv_roundtrip inner () =
  let d, _ =
    kv_deployment ~mode:(Partitioned { partitions = 2; inner }) ()
  in
  let c = KV_smr.Deployment.client d 0 in
  Alcotest.(check bool) "put p0" true (KV_smr.call c (Put (2, 10)) = Some Stored);
  Alcotest.(check bool) "put p1" true (KV_smr.call c (Put (3, 11)) = Some Stored);
  Alcotest.(check bool) "get p0" true
    (KV_smr.call c (Get 2) = Some (Value (Some 10)));
  Alcotest.(check bool) "get p1" true
    (KV_smr.call c (Get 3) = Some (Value (Some 11)));
  Alcotest.(check bool) "get empty" true
    (KV_smr.call c (Get 5) = Some (Value None));
  KV_smr.Deployment.shutdown d

let test_part_kv_replicas_converge () =
  let d, services =
    kv_deployment
      ~mode:
        (Partitioned
           { partitions = 2; inner = Parallel { impl = Lockfree; workers = 2 } })
      ()
  in
  let c0 = KV_smr.Deployment.client d 0 in
  let c1 = KV_smr.Deployment.client d 1 in
  let t0 =
    Thread.create
      (fun () ->
        for i = 0 to 19 do
          ignore (KV_smr.call c0 (Put (i mod 8, i)) : _ option)
        done)
      ()
  in
  let t1 =
    Thread.create
      (fun () ->
        for i = 0 to 19 do
          ignore (KV_smr.call c1 (Put (8 + (i mod 8), 100 + i)) : _ option)
        done)
      ()
  in
  Thread.join t0;
  Thread.join t1;
  ignore (KV_smr.call c0 (Get 0) : _ option);
  Thread.delay 0.2;
  let dump = function
    | Some s -> List.init 64 (fun k -> Psmr_app.Kv_store.execute s (Get k))
    | None -> Alcotest.fail "service not created"
  in
  let s0 = dump services.(0) in
  Alcotest.(check bool) "replica 1 equals replica 0" true
    (dump services.(1) = s0);
  Alcotest.(check bool) "replica 2 equals replica 0" true
    (dump services.(2) = s0);
  KV_smr.Deployment.shutdown d

let test_part_bank_cross_transfers () =
  (* Transfers between even and odd accounts are cross-partition under
     partitions=2; the banks must converge with money conserved and the
     replicas' merges must actually have routed crosses. *)
  let accounts = 8 and initial = 100 in
  let services = Array.make 3 None in
  let make_service id =
    let s = Psmr_app.Bank.create ~accounts ~initial_balance:initial in
    services.(id) <- Some s;
    s
  in
  let cfg =
    {
      (Bank_smr.Deployment.default_config ~make_service ()) with
      clients = 2;
      mode = Partitioned { partitions = 2; inner = Sequential };
      abcast = fast_abcast;
      tick_interval = 1e-3;
      client_timeout = 0.4;
    }
  in
  let d = Bank_smr.Deployment.create cfg in
  Bank_smr.Deployment.start d;
  let c0 = Bank_smr.Deployment.client d 0 in
  let c1 = Bank_smr.Deployment.client d 1 in
  let worker c base =
    for i = 0 to 14 do
      let src = (base + i) mod accounts in
      let dst = (src + 1) mod accounts in
      ignore (Bank_smr.call c (Psmr_app.Bank.Transfer { src; dst; amount = 3 }) : _ option)
    done
  in
  let t0 = Thread.create (fun () -> worker c0 0) () in
  let t1 = Thread.create (fun () -> worker c1 3) () in
  Thread.join t0;
  Thread.join t1;
  ignore (Bank_smr.call c0 (Balance 0) : _ option);
  Thread.delay 0.2;
  let balances = function
    | Some s ->
        List.init accounts (fun a -> Psmr_app.Bank.execute s (Balance a))
    | None -> Alcotest.fail "service not created"
  in
  let b0 = balances services.(0) in
  let total =
    List.fold_left
      (fun acc -> function Psmr_app.Bank.Amount x -> acc + x | _ -> acc)
      0 b0
  in
  Alcotest.(check int) "money conserved" (accounts * initial) total;
  Alcotest.(check bool) "replica 1 equals replica 0" true
    (balances services.(1) = b0);
  Alcotest.(check bool) "replica 2 equals replica 0" true
    (balances services.(2) = b0);
  Alcotest.(check bool) "crosses were merged" true
    (Bank_smr.Deployment.replica_crosses d 0 > 0);
  Alcotest.(check int) "merge drained" 0
    (Bank_smr.Deployment.replica_merge_pending d 0);
  Bank_smr.Deployment.shutdown d

let test_part_sequencer_crash_failover () =
  let d, _ =
    kv_deployment ~clients:1
      ~mode:(Partitioned { partitions = 2; inner = Sequential })
      ()
  in
  let c = KV_smr.Deployment.client d 0 in
  Alcotest.(check bool) "p1 write before crash" true
    (KV_smr.call c (Put (1, 7)) = Some Stored);
  let seq = KV_smr.Deployment.replica_partition_leader d 0 ~part:1 in
  KV_smr.Deployment.crash_replica d seq;
  (* Partition 1 must fail over; both partitions keep serving. *)
  Alcotest.(check bool) "p1 write after crash" true
    (KV_smr.call c (Put (3, 8)) = Some Stored);
  Alcotest.(check bool) "p0 write after crash" true
    (KV_smr.call c (Put (2, 9)) = Some Stored);
  Alcotest.(check bool) "p1 read after crash" true
    (KV_smr.call c (Get 3) = Some (Value (Some 8)));
  let observer = if seq = 0 then 1 else 0 in
  Alcotest.(check bool) "partition 1 changed sequencer" true
    (KV_smr.Deployment.replica_partition_leader d observer ~part:1 <> seq);
  KV_smr.Deployment.shutdown d

(* --- equivalence: partitioned merge vs single-sequencer execution --- *)

(* The property that makes partitioned ordering usable for SMR: take one
   command log, shard it into per-partition sequencer streams, merge under
   several arrival interleavings, and execute.  All merged orders must
   yield the same per-command replies and the same final state as each
   other (replica convergence), and the merged order run through the
   Coarse COS executor must match its own sequential execution
   (single-sequencer equivalence) — for every bundled service. *)
module Equiv
    (S : Psmr_app.Service_intf.S) (C : sig
      val name : string
      val fresh : unit -> S.t
      val gen_cmd : Random.State.t -> S.command
    end) =
struct
  module R = Psmr_harness.Recovery.Make (S)

  let parts_of ~partitions cmd =
    match
      List.sort_uniq compare
        (List.map (fun (k, _) -> abs k mod partitions) (S.footprint cmd))
    with
    | [] -> [| 0 |]
    | ps -> Array.of_list ps

  let run_seq (log : S.command array) order =
    let st = C.fresh () in
    let replies = Array.make (Array.length log) "" in
    List.iter
      (fun cid ->
        replies.(cid) <-
          Format.asprintf "%a" S.pp_response (S.execute st log.(cid)))
      order;
    (replies, S.snapshot st)

  let prop (partitions, k, seed) =
    let rng = Random.State.make [| seed |] in
    let log = Array.init k (fun _ -> C.gen_cmd rng) in
    let cmds =
      List.init k (fun cid ->
          { cid; touched = parts_of ~partitions log.(cid) })
    in
    let orders =
      Array.init partitions (fun p ->
          let mine =
            List.filter (fun c -> Array.exists (fun q -> q = p) c.touched) cmds
          in
          if partitions = 1 then mine else shuffle rng mine)
    in
    let runs =
      List.init 3 (fun i ->
          let arng = Random.State.make [| seed; i |] in
          run_interleaving ~partitions ~orders (random_pick arng))
    in
    let merged =
      List.map
        (fun (t, out) ->
          if Pmerge.pending t <> 0 then QCheck.Test.fail_report "merge stuck";
          emitted_cids out)
        runs
    in
    let m0 = List.hd merged in
    (* partitions=1 degenerates to the sequencer's order itself *)
    if partitions = 1 && m0 <> List.init k Fun.id then
      QCheck.Test.fail_report "p=1 must preserve the stream order";
    let r0, s0 = run_seq log m0 in
    List.iter
      (fun m ->
        let r, s = run_seq log m in
        if r <> r0 || s <> s0 then
          QCheck.Test.fail_report
            "merged orders disagree on replies or final state")
      (List.tl merged);
    (* Same merged order through the Coarse COS parallel executor. *)
    let out =
      R.run ~impl:Psmr_cos.Registry.Coarse ~workers:4 ~state:C.fresh
        ~log:(Array.of_list (List.map (fun cid -> log.(cid)) m0))
        ()
    in
    out.R.completed
    && out.R.final_state = s0
    && List.for_all2
         (fun i cid -> out.R.replies.(i) = r0.(cid))
         (List.init k Fun.id) m0

  let test =
    QCheck.Test.make ~count:40
      ~name:(Printf.sprintf "%s: partitioned merge == sequential == Coarse" C.name)
      (QCheck.make
         QCheck.Gen.(
           let* partitions = oneofl [ 1; 2; 4 ] in
           let* k = int_range 8 30 in
           let* seed = int_bound 1_000_000 in
           return (partitions, k, seed)))
      prop
end

module Bank_equiv =
  Equiv
    (Psmr_app.Bank)
    (struct
      let name = "bank"
      let fresh () = Psmr_app.Bank.create ~accounts:8 ~initial_balance:100

      let gen_cmd rng =
        match Random.State.int rng 3 with
        | 0 -> Psmr_app.Bank.Balance (Random.State.int rng 8)
        | 1 -> Psmr_app.Bank.Deposit (Random.State.int rng 8, Random.State.int rng 20)
        | _ ->
            let src = Random.State.int rng 8 in
            let dst = Random.State.int rng 8 in
            Psmr_app.Bank.Transfer { src; dst; amount = Random.State.int rng 30 }
    end)

module Kv_equiv =
  Equiv
    (Psmr_app.Kv_store)
    (struct
      let name = "kv"
      let fresh () = Psmr_app.Kv_store.create ~capacity:16

      let gen_cmd rng =
        if Random.State.bool rng then Psmr_app.Kv_store.Get (Random.State.int rng 16)
        else Psmr_app.Kv_store.Put (Random.State.int rng 16, Random.State.int rng 100)
    end)

module List_equiv =
  Equiv
    (Psmr_app.Linked_list)
    (struct
      let name = "linked-list"
      let fresh () = Psmr_app.Linked_list.create ~initial_size:8

      let gen_cmd rng =
        if Random.State.bool rng then
          Psmr_app.Linked_list.Contains (Random.State.int rng 32)
        else Psmr_app.Linked_list.Add (Random.State.int rng 32)
    end)

let () =
  let qcheck t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "partition"
    [
      ( "pmerge",
        [
          Alcotest.test_case "singles passthrough" `Quick
            test_singles_passthrough;
          Alcotest.test_case "rendezvous waits for all streams" `Quick
            test_rendezvous_waits_for_all_streams;
          Alcotest.test_case "cycle tie-break deterministic" `Quick
            test_cycle_tiebreak_deterministic;
          Alcotest.test_case "no-barrier is arrival-dependent" `Quick
            test_no_barrier_is_arrival_dependent;
          Alcotest.test_case "push validation" `Quick test_push_validation;
          Alcotest.test_case "rotational wedge regression" `Quick
            test_rotational_wedge_regression;
        ] );
      ( "pmerge-qcheck",
        [ qcheck qcheck_merge_deterministic; qcheck qcheck_all_cross_drains ]
      );
      ( "part-sim",
        [
          Alcotest.test_case "partitions=1 == single abcast" `Quick
            test_p1_matches_single_abcast;
          Alcotest.test_case "replicas agree on projections" `Quick
            test_replicas_agree_on_projections;
          Alcotest.test_case "sequencer crash recovers partition" `Quick
            test_sequencer_crash_recovers_partition;
          Alcotest.test_case "golden merged-order trace" `Quick
            test_golden_trace;
        ] );
      ( "part-deploy",
        [
          Alcotest.test_case "kv roundtrip (sequential inner)" `Quick
            (test_part_kv_roundtrip Sequential);
          Alcotest.test_case "kv roundtrip (early inner)" `Quick
            (test_part_kv_roundtrip
               (Parallel_early { workers = 2; classes = None }));
          Alcotest.test_case "kv replicas converge (cos inner)" `Quick
            test_part_kv_replicas_converge;
          Alcotest.test_case "bank cross-partition transfers" `Quick
            test_part_bank_cross_transfers;
          Alcotest.test_case "sequencer crash failover" `Quick
            test_part_sequencer_crash_failover;
        ] );
      ( "part-equivalence",
        [ qcheck Bank_equiv.test; qcheck Kv_equiv.test; qcheck List_equiv.test ]
      );
    ]
