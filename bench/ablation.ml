(* Standalone driver for the A6 ablation (indexed vs scan-based insert):
   prints the throughput-vs-workers table and the per-insert cost vs graph
   population micro-measure without running the full figure suite. *)

let () =
  print_endline "## Ablation: indexed vs scan-based insert (light, 0% writes)\n";
  print_string
    (Psmr_util.Table.render_series ~x_label:"workers" ~y_label:"kops/s"
       (Psmr_harness.Ablations.indexed_vs_scan ()));
  print_endline
    "\n## Ablation: per-insert cost vs graph population (no workers)\n";
  print_string
    (Psmr_util.Table.render_series ~x_label:"population" ~y_label:"ns/insert"
       (Psmr_harness.Ablations.insert_cost_vs_population ()))
