(* Engine microbenchmarks: how fast the DES core itself turns events over,
   independent of any data structure under test.  Three loads:

   - [churn]: pure schedule/execute traffic — 8192 chains each
     re-scheduling one preallocated closure, on mixed periods (heap
     discipline) with one chain in eight running at zero delay
     (same-timestamp lane discipline).  Nothing is allocated per event on
     the benchmark side, so the row measures the engine's own
     enqueue/dequeue/dispatch cost, through a pending set of the size the
     partitions-by-workers scale-out grids produce.  The 10M-event point
     of this load is the PR's acceptance number.
   - [sync_storm]: the simulated synchronization primitives under
     contention — mutex handoffs, semaphore parks/wakes, condition-free
     but suspend-heavy, the traffic the COS experiments generate.
   - [replica]: a real harness run (indexed COS, 32 workers) so the
     microbenchmarks stay anchored to what the figures actually pay.

   Wall time comes from [Grid_runner.wall_now]; everything else in the
   engine is virtual-time code and must stay clock-free. *)

open Psmr_sim

type row = { name : string; events : int; wall_seconds : float }

let events_per_second r =
  if r.wall_seconds <= 0.0 then 0.0
  else float_of_int r.events /. r.wall_seconds

let timed name f =
  (* The engine rows run after the bechamel micro section in the full
     bench binary; start each scenario from a settled heap so its row
     measures the engine, not the previous benchmark's garbage. *)
  Gc.compact ();
  let t0 = Grid_runner.wall_now () in
  let engine = f () in
  let wall_seconds = Grid_runner.wall_now () -. t0 in
  { name; events = Engine.events_executed engine; wall_seconds }

(* Pure scheduling churn: no user state, just event turnover.  Each chain
   re-schedules the same closure, so steady state allocates nothing on
   this side of the engine API.  Mixed periods keep the priority queue
   genuinely ordered (not a single timestamp); the zero-delay chains
   exercise the same-timestamp lane. *)
let churn ~name ~events =
  timed name @@ fun () ->
  let e = Engine.create () in
  let chains = 8192 in
  let remaining = Array.make chains (events / chains) in
  for j = 0 to chains - 1 do
    let dt =
      if j land 7 = 0 then 0.0 else 1e-6 *. float_of_int (1 + (j mod 7))
    in
    let rec tick () =
      let n = remaining.(j) in
      if n > 0 then begin
        remaining.(j) <- n - 1;
        Engine.schedule e ~delay:dt tick
      end
    in
    Engine.schedule e tick
  done;
  Engine.run e;
  e

(* Synchronization-primitive storm: what scheduler workers do all day —
   contend on a lock, park on a semaphore, get woken. *)
let sync_storm ~name ~events =
  timed name @@ fun () ->
  let e = Engine.create () in
  let costs = Costs.default in
  let m = Sim_sync.Mutex.create costs in
  let s = Sim_sync.Semaphore.create costs 4 in
  let procs = 32 in
  let iters = events / (procs * 8) in
  for _ = 1 to procs do
    Engine.spawn e (fun () ->
        for _ = 1 to iters do
          Sim_sync.Mutex.lock m;
          Engine.delay 1e-6;
          Sim_sync.Mutex.unlock m;
          Sim_sync.Semaphore.acquire s;
          Engine.yield ();
          Sim_sync.Semaphore.release s
        done)
  done;
  Engine.run e;
  e

(* A real figure-grade run, reported in engine events rather than kops:
   the number the microbenchmarks above are meant to move. *)
let replica ~smoke =
  let duration, warmup = if smoke then (0.02, 0.005) else (0.08, 0.02) in
  let r =
    Psmr_harness.Standalone.run ~impl:Psmr_cos.Registry.Indexed ~workers:32
      ~spec:{ Psmr_workload.Workload.write_pct = 15.0; cost = Light }
      ~duration ~warmup ()
  in
  {
    name = "replica_indexed_w32";
    events = r.Psmr_harness.Standalone.engine_events;
    wall_seconds = r.wall_seconds;
  }

(* Process churn: the same mixed-period traffic driven through effect
   coroutines ([delay]/[yield]) rather than plain callbacks — each event
   is a continuation park/resume, so the row includes the effect-handler
   cost the COS workloads pay. *)
let process_churn ~name ~events =
  timed name @@ fun () ->
  let e = Engine.create () in
  let procs = 64 in
  let iters = (events / procs) - 1 in
  for p = 0 to procs - 1 do
    let dt = 1e-6 *. float_of_int (1 + (p mod 7)) in
    Engine.spawn e (fun () ->
        for i = 1 to iters do
          if i land 7 = 0 then Engine.yield () else Engine.delay dt
        done)
  done;
  Engine.run e;
  e

let rows ~smoke () =
  let churn_row =
    if smoke then churn ~name:"churn_smoke" ~events:500_000
    else churn ~name:"churn_10m" ~events:10_000_000
  in
  let proc_row =
    process_churn
      ~name:(if smoke then "process_churn_smoke" else "process_churn")
      ~events:(if smoke then 500_000 else 10_000_000)
  in
  let storm =
    sync_storm ~name:"sync_storm" ~events:(if smoke then 200_000 else 2_000_000)
  in
  [ churn_row; proc_row; storm; replica ~smoke ]

let pp_row ppf r =
  Format.fprintf ppf "%-20s %9d events  %8.3fs  %12.0f events/s" r.name
    r.events r.wall_seconds (events_per_second r)
