(* Benchmark entry point.

   Part 1 — Bechamel micro-benchmarks of the real (OS-thread platform) data
   structures: per-operation cost of each COS implementation, the linked-list
   service scans, and supporting structures.  These ground the simulation
   cost model (see EXPERIMENTS.md).

   Part 2 — regeneration of every figure of the paper's evaluation (Figures
   2-6) through the simulation harness.  Set PSMR_BENCH_FAST=1 for a
   subsampled smoke run; set PSMR_BENCH_SKIP_FIGURES=1 to run only the
   micro-benchmarks. *)

open Bechamel
open Toolkit

module RP = Psmr_platform.Real_platform

module Rw_cmd = struct
  type t = bool

  let conflict a b = a || b
  let pp ppf w = Format.pp_print_string ppf (if w then "w" else "r")
end

(* One insert+get+remove cycle on a COS pre-filled to a given population:
   the steady-state per-command cost of the structure itself. *)
let cos_cycle impl ~population ~writes =
  let (module S : Psmr_cos.Cos_intf.S with type cmd = bool) =
    Psmr_cos.Registry.instantiate impl (module RP) (module Rw_cmd)
  in
  let t = S.create ~max_size:150 () in
  let rng = Psmr_util.Rng.create ~seed:1L in
  for _ = 1 to population do
    S.insert t (Psmr_util.Rng.below_percent rng writes)
  done;
  Staged.stage (fun () ->
      S.insert t (Psmr_util.Rng.below_percent rng writes);
      match S.get t with
      | Some h -> S.remove t h
      | None -> assert false)

let cos_tests =
  Test.make_grouped ~name:"cos-cycle"
    (List.concat_map
       (fun impl ->
         List.map
           (fun pop ->
             Test.make
               ~name:
                 (Printf.sprintf "%s/pop%d"
                    (Psmr_cos.Registry.to_string impl)
                    pop)
               (cos_cycle impl ~population:pop ~writes:10.0))
           [ 1; 50; 140 ])
       Psmr_cos.Registry.all)

let list_tests =
  let scan size =
    let l = Psmr_app.Linked_list.create ~initial_size:size in
    let rng = Psmr_util.Rng.create ~seed:2L in
    Staged.stage (fun () ->
        ignore
          (Psmr_app.Linked_list.execute l
             (Contains (Psmr_util.Rng.int rng size))
            : bool))
  in
  Test.make_grouped ~name:"linked-list"
    [
      Test.make ~name:"contains/1k" (scan 1_000);
      Test.make ~name:"contains/10k" (scan 10_000);
    ]

let util_tests =
  let rng = Psmr_util.Rng.create ~seed:3L in
  let heap = Psmr_util.Heap.create ~cmp:compare in
  let hist = Psmr_util.Histogram.create () in
  Test.make_grouped ~name:"util"
    [
      Test.make ~name:"rng-int"
        (Staged.stage (fun () -> ignore (Psmr_util.Rng.int rng 1000 : int)));
      Test.make ~name:"heap-push-pop"
        (Staged.stage (fun () ->
             Psmr_util.Heap.add heap (Psmr_util.Rng.int rng 1000);
             ignore (Psmr_util.Heap.pop heap : int option)));
      Test.make ~name:"histogram-record"
        (Staged.stage (fun () -> Psmr_util.Histogram.record hist 0.0012));
    ]

let atomic_tests =
  let a = Atomic.make 0 in
  let m = Mutex.create () in
  Test.make_grouped ~name:"primitives"
    [
      Test.make ~name:"atomic-cas"
        (Staged.stage (fun () ->
             ignore (Atomic.compare_and_set a (Atomic.get a) 1 : bool)));
      Test.make ~name:"mutex-lock-unlock"
        (Staged.stage (fun () ->
             Mutex.lock m;
             Mutex.unlock m));
    ]

let run_micro () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let tests =
    Test.make_grouped ~name:"micro"
      [ atomic_tests; util_tests; list_tests; cos_tests ]
  in
  let raws = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Instance.monotonic_clock raws
  in
  print_endline "# Micro-benchmarks (real threads, this machine)\n";
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some [ e ] -> Printf.sprintf "%.1f" e
          | Some _ | None -> "n/a"
        in
        let r2 =
          match Analyze.OLS.r_square result with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "n/a"
        in
        [ name; ns; r2 ] :: acc)
      ols []
    |> List.sort compare
  in
  print_string
    (Psmr_util.Table.render ~header:[ "benchmark"; "ns/op"; "r-sq" ] rows);
  print_newline ()

let () =
  let getenv_flag v =
    match Sys.getenv_opt v with Some ("1" | "true") -> true | _ -> false
  in
  run_micro ();
  if not (getenv_flag "PSMR_BENCH_SKIP_FIGURES") then begin
    let opts =
      if getenv_flag "PSMR_BENCH_FAST" then Psmr_harness.Figures.fast_options
      else Psmr_harness.Figures.default_options
    in
    let opts = { opts with progress = not (getenv_flag "PSMR_BENCH_QUIET") } in
    print_string (Psmr_harness.Figures.run_all ~opts ())
  end
