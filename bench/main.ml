(* Benchmark entry point.

   Part 1 — Bechamel micro-benchmarks of the real (OS-thread platform) data
   structures: per-operation cost of each COS implementation, the linked-list
   service scans, and supporting structures.  These ground the simulation
   cost model (see EXPERIMENTS.md); the hashtbl group calibrates the [Hash]
   work kind charged by the key-indexed insert.

   Part 2 — a machine-readable summary, BENCH_cos.json: per-implementation
   micro costs, the simulated Fig. 2 standalone throughput (light cost,
   0% writes) for the scan-based and indexed inserts plus the early
   class-map dispatcher, and the keyed low-conflict comparison at 32
   workers (early vs early-opt under a mis-speculation sweep vs the COS
   family).  All simulated points are memoized on their full
   configuration, so a config shared between sections runs once.

   Part 3 — regeneration of every figure of the paper's evaluation (Figures
   2-6) through the simulation harness.  Set PSMR_BENCH_FAST=1 for a
   subsampled smoke run; set PSMR_BENCH_SKIP_FIGURES=1 to run only the
   micro-benchmarks; set PSMR_BENCH_SMOKE=1 for a time-boxed everything
   (short quotas, short simulation windows, no figures) — the @bench-smoke
   alias. *)

open Bechamel
open Toolkit

module RP = Psmr_platform.Real_platform

module Rw_cmd = struct
  type t = bool

  let conflict a b = a || b
  let footprint w = [ (0, w) ]
  let pp ppf w = Format.pp_print_string ppf (if w then "w" else "r")
end

(* One insert+get+remove cycle on a COS pre-filled to a given population:
   the steady-state per-command cost of the structure itself. *)
let cos_cycle impl ~population ~writes =
  let (module S : Psmr_cos.Cos_intf.S with type cmd = bool) =
    Psmr_cos.Registry.instantiate_keyed impl (module RP) (module Rw_cmd)
  in
  let t = S.create ~max_size:150 () in
  let rng = Psmr_util.Rng.create ~seed:1L in
  for _ = 1 to population do
    S.insert t (Psmr_util.Rng.below_percent rng writes)
  done;
  Staged.stage (fun () ->
      S.insert t (Psmr_util.Rng.below_percent rng writes);
      match S.get t with
      | Some h -> S.remove t h
      | None -> assert false)

let bench_impls = Psmr_cos.Registry.paper @ [ Psmr_cos.Registry.Indexed ]

let cos_tests =
  Test.make_grouped ~name:"cos-cycle"
    (List.concat_map
       (fun impl ->
         List.map
           (fun pop ->
             Test.make
               ~name:
                 (Printf.sprintf "%s/pop%d"
                    (Psmr_cos.Registry.to_string impl)
                    pop)
               (cos_cycle impl ~population:pop ~writes:10.0))
           [ 1; 50; 140 ])
       bench_impls)

(* Calibration for the [Hash] work kind: one lookup-or-update on an
   int-keyed table at the population the COS index reaches in steady state
   (a command's footprint keys over a live graph of ~150). *)
let hashtbl_tests =
  let h : (int, int) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to 149 do
    Hashtbl.replace h i i
  done;
  let rng = Psmr_util.Rng.create ~seed:4L in
  Test.make_grouped ~name:"hashtbl"
    [
      Test.make ~name:"find-150"
        (Staged.stage (fun () ->
             ignore
               (Hashtbl.find_opt h (Psmr_util.Rng.int rng 150) : int option)));
      Test.make ~name:"replace-150"
        (Staged.stage (fun () ->
             let k = Psmr_util.Rng.int rng 150 in
             Hashtbl.replace h k k));
    ]

let list_tests =
  let scan size =
    let l = Psmr_app.Linked_list.create ~initial_size:size in
    let rng = Psmr_util.Rng.create ~seed:2L in
    Staged.stage (fun () ->
        ignore
          (Psmr_app.Linked_list.execute l
             (Contains (Psmr_util.Rng.int rng size))
            : bool))
  in
  Test.make_grouped ~name:"linked-list"
    [
      Test.make ~name:"contains/1k" (scan 1_000);
      Test.make ~name:"contains/10k" (scan 10_000);
    ]

let util_tests =
  let rng = Psmr_util.Rng.create ~seed:3L in
  let heap = Psmr_util.Heap.create ~cmp:compare in
  let hist = Psmr_util.Histogram.create () in
  Test.make_grouped ~name:"util"
    [
      Test.make ~name:"rng-int"
        (Staged.stage (fun () -> ignore (Psmr_util.Rng.int rng 1000 : int)));
      Test.make ~name:"heap-push-pop"
        (Staged.stage (fun () ->
             Psmr_util.Heap.add heap (Psmr_util.Rng.int rng 1000);
             ignore (Psmr_util.Heap.pop heap : int option)));
      Test.make ~name:"histogram-record"
        (Staged.stage (fun () -> Psmr_util.Histogram.record hist 0.0012));
    ]

let atomic_tests =
  let a = Atomic.make 0 in
  let m = Mutex.create () in
  Test.make_grouped ~name:"primitives"
    [
      Test.make ~name:"atomic-cas"
        (Staged.stage (fun () ->
             ignore (Atomic.compare_and_set a (Atomic.get a) 1 : bool)));
      Test.make ~name:"mutex-lock-unlock"
        (Staged.stage (fun () ->
             Mutex.lock m;
             Mutex.unlock m));
    ]

(* Runs the micro suite, prints the table, and returns (name, ns/op) for the
   JSON summary. *)
let run_micro ~smoke () =
  let cfg =
    if smoke then Benchmark.cfg ~limit:200 ~quota:(Time.second 0.05) ~kde:None ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let tests =
    Test.make_grouped ~name:"micro"
      [ atomic_tests; util_tests; hashtbl_tests; list_tests; cos_tests ]
  in
  let raws = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Instance.monotonic_clock raws
  in
  print_endline "# Micro-benchmarks (real threads, this machine)\n";
  let measured =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some [ e ] -> Some e
          | Some _ | None -> None
        in
        let r2 =
          match Analyze.OLS.r_square result with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "n/a"
        in
        (name, ns, r2) :: acc)
      ols []
    |> List.sort compare
  in
  let rows =
    List.map
      (fun (name, ns, r2) ->
        let ns =
          match ns with Some e -> Printf.sprintf "%.1f" e | None -> "n/a"
        in
        [ name; ns; r2 ])
      measured
  in
  print_string
    (Psmr_util.Table.render ~header:[ "benchmark"; "ns/op"; "r-sq" ] rows);
  print_newline ();
  List.filter_map
    (fun (name, ns, _) -> Option.map (fun e -> (name, e)) ns)
    measured

(* One simulated standalone point, memoized on its full configuration
   (impl, workers, batch, workload, smoke): the Fig. 2 grid and the keyed
   comparison below both draw from this table, so a configuration that
   appears under several labels — or a worker count repeated across
   sections — is simulated exactly once.  COS impls on the plain workload
   go through [Standalone]; anything with a keyed spec (the early family,
   or a COS impl raced against it) goes through [Keyed_bench], which also
   reports the dispatcher's class statistics. *)
type sim_row = {
  s_kops : float;
  s_direct : int;
  s_rendezvous : int;
  s_repairs : int;
  s_revoked : int;
  s_spec_execs : int;
  s_rollbacks : int;
  s_redos : int;
}

let fig2_spec =
  { Psmr_workload.Workload.write_pct = 0.0; cost = Psmr_workload.Workload.Light }

type sim_config = {
  c_impl : string;
  c_workers : int;
  c_batch : int;
  c_keyed : Psmr_workload.Workload.Keyed.spec option;
}

let config_key ~smoke c =
  Printf.sprintf "%s/w%d/b%d/%s/%b" c.c_impl c.c_workers c.c_batch
    (match c.c_keyed with
    | None -> "fig2"
    | Some spec -> Format.asprintf "%a" Psmr_workload.Workload.Keyed.pp spec)
    smoke

(* One point, computed from its configuration alone: its own engine, RNG
   and sinks, no facade state — safe to run on a parallel domain. *)
let compute_point ~smoke c =
  let duration, warmup = if smoke then (0.02, 0.005) else (0.08, 0.02) in
  match c.c_keyed with
  | Some spec ->
      let backend =
        match Psmr_early.Registry.of_string c.c_impl with
        | Some b -> b
        | None -> invalid_arg ("sim_point: unknown backend " ^ c.c_impl)
      in
      let r =
        Psmr_harness.Keyed_bench.run ~backend ~workers:c.c_workers ~spec
          ~batch:c.c_batch ~duration ~warmup ()
      in
      {
        s_kops = r.Psmr_harness.Keyed_bench.kops;
        s_direct = r.direct;
        s_rendezvous = r.rendezvous;
        s_repairs = r.repairs;
        s_revoked = r.revoked;
        s_spec_execs = r.spec_execs;
        s_rollbacks = r.rollbacks;
        s_redos = r.redos;
      }
  | None ->
      let ci =
        match Psmr_cos.Registry.of_string c.c_impl with
        | Some i -> i
        | None -> invalid_arg ("sim_point: unknown COS impl " ^ c.c_impl)
      in
      let r =
        Psmr_harness.Standalone.run ~impl:ci ~workers:c.c_workers
          ~batch:c.c_batch ~spec:fig2_spec ~duration ~warmup ()
      in
      {
        s_kops = r.Psmr_harness.Standalone.kops;
        s_direct = 0;
        s_rendezvous = 0;
        s_repairs = 0;
        s_revoked = 0;
        s_spec_execs = 0;
        s_rollbacks = 0;
        s_redos = 0;
      }

let sim_memo : (string, sim_row) Hashtbl.t = Hashtbl.create 32

(* Compute a batch of configurations on [jobs] domains and fill the memo
   (main domain only — the table is never touched from helpers).  Because
   every point is independent and deterministic, the memo ends up with
   exactly the values a sequential run would compute, so the JSON emitted
   from it is byte-identical for any [jobs]. *)
let prefill_points ~smoke ~jobs configs =
  let todo =
    List.filter
      (fun c -> not (Hashtbl.mem sim_memo (config_key ~smoke c)))
      configs
    |> List.sort_uniq compare
  in
  let results =
    Psmr_sim.Grid_runner.map ~jobs (compute_point ~smoke) (Array.of_list todo)
  in
  List.iteri
    (fun i c -> Hashtbl.replace sim_memo (config_key ~smoke c) results.(i))
    todo

let sim_point ~smoke ~impl ~workers ?(batch = 1) ?keyed () =
  let c = { c_impl = impl; c_workers = workers; c_batch = batch; c_keyed = keyed } in
  let key = config_key ~smoke c in
  match Hashtbl.find_opt sim_memo key with
  | Some r -> r
  | None ->
      let r = compute_point ~smoke c in
      Hashtbl.add sim_memo key r;
      r

(* Simulated Fig. 2 points for the JSON summary: standalone throughput at
   light cost, 0% writes, for the scan-based baseline, the indexed insert
   with and without delivery batching, and the early dispatcher (keyed
   low-conflict workload at 0% writes — footprints are needed for the
   class map, the cost profile matches). *)
let fig2_grid =
  let keyed0 =
    { Psmr_workload.Workload.Keyed.low_conflict with write_pct = 0.0 }
  in
  [
    ("lockfree", "lockfree", 1, None);
    ("indexed", "indexed", 1, None);
    ("indexed_batch16", "indexed", 16, None);
    ("early", "early", 1, Some keyed0);
    ("early_opt", "early-opt", 1, Some keyed0);
  ]

let fig2_workers = [ 16; 32; 64 ]

let fig2_configs =
  List.concat_map
    (fun w ->
      List.map
        (fun (_, impl, batch, keyed) ->
          { c_impl = impl; c_workers = w; c_batch = batch; c_keyed = keyed })
        fig2_grid)
    fig2_workers

let sim_fig2 ~smoke () =
  List.concat_map
    (fun w ->
      List.map
        (fun (label, impl, batch, keyed) ->
          (w, label, (sim_point ~smoke ~impl ~workers:w ~batch ?keyed ()).s_kops))
        fig2_grid)
    fig2_workers

(* The acceptance comparison (docs/SCHEDULING.md): the keyed low-conflict
   workload at 32 workers — early scheduling, conservative and optimistic
   under a mis-speculation sweep, against the COS family fed the identical
   command stream.  Rows carry the dispatcher's class statistics so the
   fast-path share is visible next to the throughput. *)
let keyed_configs =
  let base = Psmr_workload.Workload.Keyed.low_conflict in
  let pt ?(mis = 0.0) ?(batch = 1) impl =
    {
      c_impl = impl;
      c_workers = 32;
      c_batch = batch;
      c_keyed = Some { base with mis_pct = mis };
    }
  in
  [
    pt "early"; pt "early-opt"; pt ~mis:0.1 "early-opt";
    pt ~mis:1.0 "early-opt"; pt ~mis:5.0 "early-opt";
    pt ~mis:10.0 "early-opt"; pt "indexed"; pt ~batch:16 "indexed";
    pt "lockfree";
  ]

let sim_keyed ~smoke () =
  let base = Psmr_workload.Workload.Keyed.low_conflict in
  let pt ?(mis = 0.0) ?(batch = 1) impl =
    sim_point ~smoke ~impl ~workers:32 ~batch
      ~keyed:{ base with mis_pct = mis }
      ()
  in
  [
    ("early", 0.0, pt "early");
    ("early_opt_mis0", 0.0, pt "early-opt");
    ("early_opt_mis0_1", 0.1, pt ~mis:0.1 "early-opt");
    ("early_opt_mis1", 1.0, pt ~mis:1.0 "early-opt");
    ("early_opt_mis5", 5.0, pt ~mis:5.0 "early-opt");
    ("early_opt_mis10", 10.0, pt ~mis:10.0 "early-opt");
    ("indexed", 0.0, pt "indexed");
    ("indexed_batch16", 0.0, pt ~batch:16 "indexed");
    ("lockfree", 0.0, pt "lockfree");
  ]

(* Partitioned-ordering grid (docs/PARTITIONING.md): the Partition stack
   over the simulated LAN, partitions × workers, via [Part_bench].  Light
   rows are ordering-bound — execution is cheap enough that the sequencer's
   per-command ingestion is the bottleneck, so throughput scales with
   partitions (the acceptance ratio below).  Moderate rows show the
   interplay with execution: at w8 the executor caps both sides and
   partitioning buys nothing; at w32 it partially unbinds.  The 100%-cross
   rows are the graceful-degradation bound: every command rendezvouses in
   the merge and serializes classwise in the dispatcher, so throughput
   drops but nothing wedges (no holes pile up, no view changes).  Points
   are memoized on [Part_bench.config_label] — %g-rendered rates, the
   PR-8 %.0f collision lesson — plus the smoke flag. *)
let part_configs =
  let spec cost cross =
    { Psmr_workload.Workload.Keyed.low_conflict with cost; cross_pct = cross }
  in
  let light = spec Psmr_workload.Workload.Light
  and moderate = spec Psmr_workload.Workload.Moderate in
  [
    (1, 32, light 2.0); (2, 32, light 2.0); (4, 32, light 2.0);
    (4, 32, light 5.0); (1, 32, light 100.0); (4, 32, light 100.0);
    (1, 8, moderate 2.0); (4, 8, moderate 2.0); (1, 32, moderate 2.0);
    (4, 32, moderate 2.0);
  ]

let part_key ~smoke (p, w, spec) =
  Printf.sprintf "%s/%b"
    (Psmr_harness.Part_bench.config_label ~partitions:p
       ~replicas:(Psmr_harness.Part_bench.default_replicas ~partitions:p)
       ~workers:w ~batch:16 spec)
    smoke

let compute_part ~smoke (p, w, spec) =
  let duration, warmup = if smoke then (0.02, 0.005) else (0.08, 0.02) in
  Psmr_harness.Part_bench.run ~partitions:p ~workers:w ~spec ~duration ~warmup
    ()

let part_memo : (string, Psmr_harness.Part_bench.result) Hashtbl.t =
  Hashtbl.create 16

let prefill_part ~smoke ~jobs =
  let todo =
    List.filter
      (fun c -> not (Hashtbl.mem part_memo (part_key ~smoke c)))
      part_configs
    |> List.sort_uniq compare
  in
  let results =
    Psmr_sim.Grid_runner.map ~jobs (compute_part ~smoke) (Array.of_list todo)
  in
  List.iteri
    (fun i c -> Hashtbl.replace part_memo (part_key ~smoke c) results.(i))
    todo

let sim_part ~smoke () =
  List.map
    (fun ((p, w, spec) as c) ->
      let r =
        match Hashtbl.find_opt part_memo (part_key ~smoke c) with
        | Some r -> r
        | None ->
            let r = compute_part ~smoke c in
            Hashtbl.add part_memo (part_key ~smoke c) r;
            r
      in
      (p, Psmr_harness.Part_bench.default_replicas ~partitions:p, w, spec, r))
    part_configs

(* Open-loop latency-under-load grid (docs/WORKLOADS.md): the Zipfian
   YCSB-A scenario driven through [Load_bench]'s bounded offered queue
   into each scheduler family at 32 workers, sweeping offered load to
   locate the saturation knee.  The rate grid is dense around each
   family's measured capacity (coarse saturates near 85 kops; the
   keyed/early/partitioned families near 1.0-1.2 Mops/s) so the knee
   lands on an interior step rather than the sweep edge.  Rows are
   memoized on target label + smoke flag and fanned out over domains
   like the other grids. *)
let open_loop_targets =
  [ "coarse"; "indexed"; "early"; "early_opt"; "part4" ]

let open_loop_workers = 32

let open_loop_rates ~smoke =
  if smoke then [ 50_000.0; 200_000.0; 2_000_000.0 ]
  else
    [
      25_000.0; 50_000.0; 100_000.0; 200_000.0; 400_000.0; 800_000.0;
      1_000_000.0; 1_100_000.0; 1_200_000.0; 1_600_000.0;
    ]

let compute_open_loop ~smoke name =
  let duration, warmup = if smoke then (0.02, 0.005) else (0.08, 0.02) in
  (* JSON row names use underscores; the target parser wants the
     registry spelling. *)
  let spelled =
    String.map (function '_' -> '-' | c -> c) name
  in
  let target =
    match Psmr_harness.Load_bench.target_of_string spelled with
    | Some t -> t
    | None -> invalid_arg ("open_loop: unknown target " ^ name)
  in
  Psmr_harness.Load_bench.sweep ~target ~workers:open_loop_workers
    ~scenario:(Psmr_traffic.Scenario.spec Psmr_traffic.Scenario.A)
    ~rates:(open_loop_rates ~smoke) ~duration ~warmup ()

let open_memo : (string, Psmr_harness.Load_bench.sweep) Hashtbl.t =
  Hashtbl.create 8

let open_key ~smoke name = Printf.sprintf "%s/%b" name smoke

let prefill_open ~smoke ~jobs =
  let todo =
    List.filter
      (fun n -> not (Hashtbl.mem open_memo (open_key ~smoke n)))
      open_loop_targets
  in
  let results =
    Psmr_sim.Grid_runner.map ~jobs (compute_open_loop ~smoke)
      (Array.of_list todo)
  in
  List.iteri
    (fun i n -> Hashtbl.replace open_memo (open_key ~smoke n) results.(i))
    todo

let sim_open_loop ~smoke () =
  List.map
    (fun name ->
      let sw =
        match Hashtbl.find_opt open_memo (open_key ~smoke name) with
        | Some sw -> sw
        | None ->
            let sw = compute_open_loop ~smoke name in
            Hashtbl.add open_memo (open_key ~smoke name) sw;
            sw
      in
      (name, sw))
    open_loop_targets

let print_open_loop rows =
  List.iter
    (fun (name, (sw : Psmr_harness.Load_bench.sweep)) ->
      Printf.printf "# open-loop %s workers=%d %s\n" name sw.workers
        (Format.asprintf "%a" Psmr_traffic.Scenario.pp_spec sw.scenario);
      List.iter
        (fun (s : Psmr_harness.Load_bench.step) ->
          Printf.printf
            "  offered %8.1f kops -> %8.1f kops  drop %5.2f%%  p50 %.6f  \
             p99 %.6f  p999 %.6f\n"
            s.offered_kops s.kops
            (100.0 *. s.drop_rate)
            s.p50 s.p99 s.p999)
        sw.steps;
      (match sw.knee_kops with
      | Some k -> Printf.printf "  knee: %.1f kops offered\n" k
      | None -> print_string "  knee: not reached\n");
      print_newline ())
    rows

(* Throughput-under-faults rows: coarse vs lock-free at 32 workers, with
   one mid-window worker crash that recovers, against the fault-free
   baseline.  Quantifies graceful degradation (docs/FAULTS.md): the
   orphaned command is requeued, a replacement worker joins after the
   respawn delay, and throughput dips rather than collapsing. *)
let sim_faults ~smoke () =
  let duration, warmup = if smoke then (0.02, 0.005) else (0.08, 0.02) in
  let spec =
    {
      Psmr_workload.Workload.write_pct = 10.0;
      cost = Psmr_workload.Workload.Moderate;
    }
  in
  let crash_spec =
    Printf.sprintf "seed=11,worker-crash=1@%g+%g" (warmup +. (duration /. 4.0))
      (duration /. 4.0)
  in
  let faults = Psmr_fault.Schedule.parse_exn crash_spec in
  List.map
    (fun (label, impl) ->
      let base =
        Psmr_harness.Standalone.run ~impl ~workers:32 ~spec ~duration ~warmup ()
      in
      let faulty =
        Psmr_harness.Standalone.run ~impl ~workers:32 ~spec ~duration ~warmup
          ~faults ()
      in
      ( label,
        crash_spec,
        base.Psmr_harness.Standalone.kops,
        faulty.Psmr_harness.Standalone.kops,
        faulty.Psmr_harness.Standalone.faults_injected ))
    [
      ("coarse_w32", Psmr_cos.Registry.Coarse);
      ("lockfree_w32", Psmr_cos.Registry.Lockfree);
    ]

(* Observability block for the JSON summary: the coarse vs lock-free
   counter/latency breakdown at 32 workers that explains the Figure-2
   plateau (see docs/OBSERVABILITY.md).  Each entry is a complete JSON
   object as emitted by [Psmr_obs.Metrics.to_json], embedded verbatim. *)
let sim_metrics ~smoke () =
  let duration, warmup = if smoke then (0.02, 0.005) else (0.08, 0.02) in
  let spec =
    {
      Psmr_workload.Workload.write_pct = 10.0;
      cost = Psmr_workload.Workload.Moderate;
    }
  in
  List.map
    (fun (label, impl) ->
      let r =
        Psmr_harness.Standalone.run ~impl ~workers:32 ~spec ~duration ~warmup
          ~metrics:true ()
      in
      let m =
        match r.Psmr_harness.Standalone.metrics with
        | Some m -> m
        | None -> assert false
      in
      ( label,
        Psmr_obs.Metrics.to_json
          ~cost_model:(Psmr_sim.Costs.to_assoc Psmr_harness.Model.sim_costs)
          m ))
    [
      ("coarse_w32", Psmr_cos.Registry.Coarse);
      ("lockfree_w32", Psmr_cos.Registry.Lockfree);
    ]

(* Hand-rolled JSON (no JSON library in the build environment). *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ~path ~micro ~fig2 ~keyed ~part ~open_loop ~faults ~metrics
    ~engine =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"metrics\": {\n";
  List.iteri
    (fun i (name, block) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %s%s\n" (json_escape name)
           (String.trim block)
           (if i = List.length metrics - 1 then "" else ",")))
    metrics;
  Buffer.add_string buf "  },\n  \"micro_ns_per_op\": [\n";
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": \"%s\", \"ns\": %.2f }%s\n"
           (json_escape name) ns
           (if i = List.length micro - 1 then "" else ",")))
    micro;
  Buffer.add_string buf "  ],\n  \"faults_sim_kops\": [\n";
  List.iteri
    (fun i (name, spec, base, faulty, injected) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"faults\": \"%s\", \"kops_fault_free\": \
            %.1f, \"kops_faulty\": %.1f, \"injected\": %d }%s\n"
           (json_escape name) (json_escape spec) base faulty injected
           (if i = List.length faults - 1 then "" else ",")))
    faults;
  Buffer.add_string buf "  ],\n  \"fig2_sim_kops\": [\n";
  List.iteri
    (fun i (w, impl, kops) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"workers\": %d, \"impl\": \"%s\", \"kops\": %.1f }%s\n" w
           (json_escape impl) kops
           (if i = List.length fig2 - 1 then "" else ",")))
    fig2;
  Buffer.add_string buf "  ],\n  \"keyed_sim_kops\": [\n";
  List.iteri
    (fun i (name, mis, r) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"workers\": 32, \"mis_pct\": %.1f, \
            \"kops\": %.1f, \"direct\": %d, \"rendezvous\": %d, \"repairs\": \
            %d, \"revoked\": %d, \"spec_execs\": %d, \"rollbacks\": %d, \
            \"redos\": %d }%s\n"
           (json_escape name) mis r.s_kops r.s_direct r.s_rendezvous
           r.s_repairs r.s_revoked r.s_spec_execs r.s_rollbacks r.s_redos
           (if i = List.length keyed - 1 then "" else ",")))
    keyed;
  Buffer.add_string buf "  ],\n  \"part_sim_kops\": [\n";
  List.iteri
    (fun i
         ( partitions,
           replicas,
           workers,
           (spec : Psmr_workload.Workload.Keyed.spec),
           (r : Psmr_harness.Part_bench.result) ) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"partitions\": %d, \"replicas\": %d, \"workers\": %d, \
            \"cost\": \"%s\", \"cross_pct\": %g, \"kops\": %.1f, \"singles\": \
            %d, \"crosses\": %d, \"holes\": %d, \"merge_pending\": %d, \
            \"views\": %d }%s\n"
           partitions replicas workers
           (json_escape (Psmr_workload.Workload.cost_label spec.cost))
           spec.cross_pct r.kops r.singles r.crosses r.holes r.merge_pending
           r.views
           (if i = List.length part - 1 then "" else ",")))
    part;
  Buffer.add_string buf "  ],\n  \"open_loop\": [\n";
  List.iteri
    (fun i (name, (sw : Psmr_harness.Load_bench.sweep)) ->
      let steps =
        String.concat ","
          (List.map
             (fun (s : Psmr_harness.Load_bench.step) ->
               Printf.sprintf
                 "\n      { \"offered_kops\": %.9g, \"kops\": %.1f, \
                  \"drop_rate\": %.9g, \"p50\": %.9g, \"p99\": %.9g, \
                  \"p999\": %.9g }"
                 s.offered_kops s.kops s.drop_rate s.p50 s.p99 s.p999)
             sw.steps)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"impl\": \"%s\", \"workers\": %d, \"scenario\": \"%s\", \
            \"records\": %d, \"theta\": %g, \"knee_kops\": %s, \"steps\": \
            [%s\n    ] }%s\n"
           (json_escape name) sw.workers
           (Psmr_traffic.Scenario.label sw.scenario.scenario)
           sw.scenario.records sw.scenario.theta
           (match sw.knee_kops with
           | Some k -> Printf.sprintf "%.9g" k
           | None -> "null")
           steps
           (if i = List.length open_loop - 1 then "" else ",")))
    open_loop;
  Buffer.add_string buf "  ],\n  \"sim_events_per_wall_second\": [\n";
  List.iteri
    (fun i (r : Engine_churn.row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"events\": %d, \"wall_seconds\": %.6f, \
            \"events_per_second\": %.0f }%s\n"
           (json_escape r.name) r.events r.wall_seconds
           (Engine_churn.events_per_second r)
           (if i = List.length engine - 1 then "" else ",")))
    engine;
  Buffer.add_string buf "  ]";
  let fig2_find impl =
    List.find_map
      (fun (w, i, k) -> if w = 32 && String.equal i impl then Some k else None)
      fig2
  in
  let keyed_find name =
    List.find_map
      (fun (n, _, r) -> if String.equal n name then Some r.s_kops else None)
      keyed
  in
  (match (fig2_find "lockfree", fig2_find "indexed_batch16") with
  | Some base, Some ix when base > 0.0 ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\n  \"speedup_w32_indexed_batch16_vs_lockfree\": %.2f" (ix /. base))
  | _ -> ());
  (match (keyed_find "indexed", keyed_find "early") with
  | Some base, Some early when base > 0.0 ->
      Buffer.add_string buf
        (Printf.sprintf ",\n  \"speedup_w32_early_vs_indexed\": %.2f"
           (early /. base))
  | _ -> ());
  (* The partitioning headline: 4 sequencers vs 1 at w32 on the
     ordering-bound (Light, 2%-cross) workload. *)
  let part_find ~partitions ~workers =
    List.find_map
      (fun (p, _, w, (spec : Psmr_workload.Workload.Keyed.spec), r) ->
        if
          p = partitions && w = workers
          && spec.cost = Psmr_workload.Workload.Light
          && spec.cross_pct = 2.0
        then Some r.Psmr_harness.Part_bench.kops
        else None)
      part
  in
  (match (part_find ~partitions:1 ~workers:32, part_find ~partitions:4 ~workers:32) with
  | Some base, Some p4 when base > 0.0 ->
      Buffer.add_string buf
        (Printf.sprintf ",\n  \"speedup_w32_part4_vs_part1\": %.2f" (p4 /. base))
  | _ -> ());
  Buffer.add_string buf "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* Re-read the summary and check its shape, so a malformed emitter fails
   the run (and the @bench-smoke alias) rather than producing a file
   downstream tooling chokes on. *)
let validate_json ~path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let module J = Psmr_util.Json in
  let fail fmt = Printf.ksprintf (fun m -> failwith (path ^ ": " ^ m)) fmt in
  match J.parse s with
  | Error msg -> fail "invalid JSON: %s" msg
  | Ok j ->
      let req name v =
        match J.member name v with
        | Some x -> x
        | None -> fail "missing member %S" name
      in
      let req_num name v =
        match J.as_num (req name v) with
        | Some _ -> ()
        | None -> fail "member %S is not a number" name
      in
      ignore (req "micro_ns_per_op" j);
      ignore (req "fig2_sim_kops" j);
      (match J.as_arr (req "keyed_sim_kops" j) with
      | Some rows ->
          List.iter
            (fun row ->
              List.iter (fun f -> req_num f row)
                [
                  "workers"; "mis_pct"; "kops"; "direct"; "rendezvous";
                  "repairs"; "revoked"; "spec_execs"; "rollbacks"; "redos";
                ])
            rows
      | None -> fail "member \"keyed_sim_kops\" is not a list");
      (match J.as_arr (req "part_sim_kops" j) with
      | Some (_ :: _ as rows) ->
          List.iter
            (fun row ->
              List.iter (fun f -> req_num f row)
                [
                  "partitions"; "replicas"; "workers"; "cross_pct"; "kops";
                  "singles"; "crosses"; "holes"; "merge_pending"; "views";
                ])
            rows
      | Some [] -> fail "member \"part_sim_kops\" is empty"
      | None -> fail "member \"part_sim_kops\" is not a list");
      req_num "speedup_w32_part4_vs_part1" j;
      (match J.as_arr (req "open_loop" j) with
      | Some (_ :: _ as rows) ->
          List.iter
            (fun row ->
              (match J.as_str (req "impl" row) with
              | Some _ -> ()
              | None -> fail "open_loop member \"impl\" is not a string");
              List.iter (fun f -> req_num f row)
                [ "workers"; "records"; "theta"; "knee_kops" ];
              match J.as_arr (req "steps" row) with
              | Some (_ :: _ as steps) ->
                  List.iter
                    (fun s ->
                      List.iter (fun f -> req_num f s)
                        [
                          "offered_kops"; "kops"; "drop_rate"; "p50"; "p99";
                          "p999";
                        ])
                    steps
              | Some [] -> fail "open_loop row has empty \"steps\""
              | None -> fail "open_loop member \"steps\" is not a list")
            rows
      | Some [] -> fail "member \"open_loop\" is empty"
      | None -> fail "member \"open_loop\" is not a list");
      (match J.as_arr (req "sim_events_per_wall_second" j) with
      | Some (_ :: _ as rows) ->
          List.iter
            (fun row ->
              List.iter (fun f -> req_num f row)
                [ "events"; "wall_seconds"; "events_per_second" ])
            rows
      | Some [] -> fail "member \"sim_events_per_wall_second\" is empty"
      | None -> fail "member \"sim_events_per_wall_second\" is not a list");
      req_num "speedup_w32_early_vs_indexed" j;
      (match J.as_arr (req "faults_sim_kops" j) with
      | Some rows ->
          List.iter
            (fun row ->
              List.iter (fun f -> req_num f row)
                [ "kops_fault_free"; "kops_faulty"; "injected" ])
            rows
      | None -> fail "member \"faults_sim_kops\" is not a list");
      let metrics = req "metrics" j in
      List.iter
        (fun block ->
          let b = req block metrics in
          let counters = req "counters" b in
          List.iter
            (fun c -> req_num c counters)
            [
              "lock_acquisitions"; "lock_wait"; "lock_hold"; "cas_attempts";
              "cas_successes"; "sem_parks"; "sem_wakes"; "insert_ops";
              "get_ops"; "remove_ops";
            ];
          let lat = req "latency_virtual_seconds" b in
          List.iter
            (fun h ->
              let hv = req h lat in
              List.iter (fun f -> req_num f hv) [ "count"; "p50"; "p95"; "p99" ])
            [ "delivery_ready"; "ready_dispatch"; "dispatch_executed" ])
        [ "coarse_w32"; "lockfree_w32" ];
      Printf.printf "schema ok: %s\n%!" path

let getenv_flag v =
  match Sys.getenv_opt v with Some ("1" | "true") -> true | _ -> false

let getenv_int v default =
  match Sys.getenv_opt v with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let full_run ~smoke =
  let jobs = getenv_int "PSMR_BENCH_JOBS" 1 in
  (* Engine rows first, on the pristine process: the Bechamel section
     leaves a populated major heap behind, and measured on a 10M-event
     churn that costs the engine rows ~12% even after a compaction. *)
  let engine_rows = Engine_churn.rows ~smoke () in
  let micro = run_micro ~smoke () in
  (* Fan the distinct simulated configurations of the fig2 and keyed
     sections out over domains before the (sequential, memo-served)
     section builds below. *)
  prefill_points ~smoke ~jobs (fig2_configs @ keyed_configs);
  prefill_part ~smoke ~jobs;
  prefill_open ~smoke ~jobs;
  let fig2 = sim_fig2 ~smoke () in
  let micro_for_json =
    List.filter
      (fun (name, _) ->
        let has sub =
          let n = String.length sub in
          let rec scan i =
            i + n <= String.length name
            && (String.equal (String.sub name i n) sub || scan (i + 1))
          in
          scan 0
        in
        has "cos-cycle" || has "hashtbl")
      micro
  in
  let json_path =
    Option.value (Sys.getenv_opt "PSMR_BENCH_JSON") ~default:"BENCH_cos.json"
  in
  write_json ~path:json_path ~micro:micro_for_json ~fig2
    ~keyed:(sim_keyed ~smoke ())
    ~part:(sim_part ~smoke ())
    ~open_loop:(sim_open_loop ~smoke ())
    ~faults:(sim_faults ~smoke ())
    ~metrics:(sim_metrics ~smoke ())
    ~engine:engine_rows;
  validate_json ~path:json_path;
  if (not smoke) && not (getenv_flag "PSMR_BENCH_SKIP_FIGURES") then begin
    let opts =
      if getenv_flag "PSMR_BENCH_FAST" then Psmr_harness.Figures.fast_options
      else Psmr_harness.Figures.default_options
    in
    let opts =
      { opts with progress = not (getenv_flag "PSMR_BENCH_QUIET"); jobs }
    in
    print_string (Psmr_harness.Figures.run_all ~opts ())
  end

let () =
  let smoke = getenv_flag "PSMR_BENCH_SMOKE" in
  if getenv_flag "PSMR_BENCH_ENGINE_ONLY" then
    (* Engine-core numbers only (the @bench-engine alias): no Bechamel
       quotas, no simulation grids, no figures — just how fast the DES
       itself turns events over. *)
    List.iter
      (fun r -> Format.printf "%a@." Engine_churn.pp_row r)
      (Engine_churn.rows ~smoke ())
  else if getenv_flag "PSMR_BENCH_OPEN_ONLY" then begin
    (* Open-loop sweeps only (the @bench-open alias): the lib/traffic
       latency-under-load grid, printed as tables, no JSON. *)
    let jobs = getenv_int "PSMR_BENCH_JOBS" 1 in
    prefill_open ~smoke ~jobs;
    print_open_loop (sim_open_loop ~smoke ())
  end
  else full_run ~smoke
