(* Quickstart: the Conflict-Ordered Set and the scheduler/worker runtime.

   We schedule a mix of read and write commands against a shared counter
   array through the lock-free COS: reads of different slots run
   concurrently on worker threads, writes serialize behind the reads they
   conflict with, and every ordering constraint of the paper's §3.3 COS
   specification is respected.

     dune exec examples/quickstart.exe *)

module RP = Psmr_platform.Real_platform

(* 1. Describe commands and their conflict relation. *)
module Command = struct
  type t = { slot : int; incr : bool }

  let conflict a b = a.slot = b.slot && (a.incr || b.incr)
  let pp ppf c = Format.fprintf ppf "%s(%d)" (if c.incr then "incr" else "read") c.slot
end

(* 2. Pick a COS implementation (the paper's lock-free algorithm). *)
module Cos = Psmr_cos.Lockfree.Make (RP) (Command)

(* 3. Attach the Algorithm-1 scheduler/worker runtime. *)
module Sched = Psmr_sched.Scheduler.Make (RP) (Cos)

let () =
  let slots = Array.make 8 0 in
  let observed = Atomic.make 0 in
  let execute (c : Command.t) =
    if c.incr then slots.(c.slot) <- slots.(c.slot) + 1
    else ignore (Atomic.fetch_and_add observed slots.(c.slot) : int)
  in
  let sched = Sched.start ~workers:4 ~execute () in
  let rng = Psmr_util.Rng.create ~seed:2026L in
  let commands = 10_000 in
  for _ = 1 to commands do
    Sched.submit sched
      {
        Command.slot = Psmr_util.Rng.int rng 8;
        incr = Psmr_util.Rng.below_percent rng 30.0;
      }
  done;
  Sched.shutdown sched;
  let total = Array.fold_left ( + ) 0 slots in
  Printf.printf "executed %d commands on 4 workers\n" (Sched.executed sched);
  Printf.printf "total increments applied: %d\n" total;
  Printf.printf "every command ran exactly once and conflicting commands ran in order.\n"
