(* A replicated bank with per-account conflicts.

   Unlike the readers-writers list, transfers only conflict when they share
   an account, so the dependency DAG is a rich partial order and parallel
   SMR extracts real concurrency even from a write-heavy workload.  The
   example checks the invariant that makes or breaks exactly-once execution:
   money is conserved on every replica.

     dune exec examples/bank_transfers.exe *)

module RP = Psmr_platform.Real_platform
module SMR = Psmr_replica.Replica.Make (RP) (Psmr_app.Bank)

let accounts = 32
let initial_balance = 1_000
let clients = 4
let transfers_per_client = 150

let () =
  let services = Array.make 3 None in
  let cfg =
    {
      (SMR.Deployment.default_config ~make_service:(fun id ->
           let s = Psmr_app.Bank.create ~accounts ~initial_balance in
           services.(id) <- Some s;
           s)
         ()) with
      clients;
      mode = Parallel { impl = Psmr_cos.Registry.Lockfree; workers = 6 };
      client_timeout = 0.3;
    }
  in
  let d = SMR.Deployment.create cfg in
  SMR.Deployment.start d;
  let start = Unix.gettimeofday () in
  let threads =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            let c = SMR.Deployment.client d ci in
            let rng = Psmr_util.Rng.create ~seed:(Int64.of_int (7 * (ci + 1))) in
            let rejected = ref 0 in
            for _ = 1 to transfers_per_client do
              let src = Psmr_util.Rng.int rng accounts in
              let dst = (src + 1 + Psmr_util.Rng.int rng (accounts - 1)) mod accounts in
              let amount = Psmr_util.Rng.int rng 200 in
              match SMR.call c (Transfer { src; dst; amount }) with
              | Some Ok -> ()
              | Some Insufficient -> incr rejected
              | Some (Amount _) | None -> failwith "unexpected response"
            done;
            Printf.printf "[client %d] done, %d transfers rejected for insufficient funds\n%!"
              ci !rejected)
          ())
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. start in
  let total_ops = clients * transfers_per_client in
  Printf.printf "%d transfers in %.2fs (%.0f ops/s end-to-end)\n" total_ops
    elapsed
    (float_of_int total_ops /. elapsed);
  (* Give non-leader replicas a moment to finish applying, then audit. *)
  Thread.delay 0.2;
  Array.iteri
    (fun i s ->
      match s with
      | Some bank ->
          let total = Psmr_app.Bank.total bank in
          Printf.printf "replica %d: total balance %d (expected %d) -> %s\n" i
            total (accounts * initial_balance)
            (if total = accounts * initial_balance then "conserved" else "VIOLATION")
      | None -> ())
    services;
  SMR.Deployment.shutdown d
