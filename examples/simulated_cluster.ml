(* The same replicated stack under the discrete-event simulator.

   This is how the benchmark harness reproduces the paper's 64-core
   figures on any machine: the deployment below simulates three 64-way
   replicas on a 1 Gbps LAN serving 100 closed-loop clients, in virtual
   time.  A multi-second cluster experiment runs in well under a second of
   wall-clock time and is bit-for-bit reproducible.

     dune exec examples/simulated_cluster.exe *)

let () =
  let wall0 = Unix.gettimeofday () in
  List.iter
    (fun (label, mode) ->
      let r =
        Psmr_harness.Smr.run ~mode
          ~spec:{ write_pct = 10.0; cost = Psmr_workload.Workload.Moderate }
          ~clients:100 ()
      in
      Printf.printf "%-28s %8.1f kops/s   mean latency %5.2f ms   p99 %5.2f ms\n%!"
        label r.kops r.mean_latency_ms r.p99_latency_ms)
    [
      ("sequential SMR", Psmr_replica.Replica.Sequential);
      ( "coarse-grained, 12 workers",
        Parallel { impl = Psmr_cos.Registry.Coarse; workers = 12 } );
      ( "fine-grained, 6 workers",
        Parallel { impl = Psmr_cos.Registry.Fine; workers = 6 } );
      ( "lock-free, 32 workers",
        Parallel { impl = Psmr_cos.Registry.Lockfree; workers = 32 } );
    ];
  Printf.printf
    "\n(four simulated cluster experiments, 0.28 virtual seconds each, in %.1fs of wall time)\n"
    (Unix.gettimeofday () -. wall0)
