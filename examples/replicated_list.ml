(* A fault-tolerant replicated linked-list service (the paper's evaluation
   application), end to end on real threads:

   - three replicas, each running parallel SMR with the lock-free COS and
     four worker threads;
   - two clients performing contains/add operations;
   - halfway through, the leader replica is crashed: the protocol elects a
     new leader and the clients fail over transparently.

     dune exec examples/replicated_list.exe *)

module RP = Psmr_platform.Real_platform
module SMR = Psmr_replica.Replica.Make (RP) (Psmr_app.Linked_list)

let () =
  let services = Array.make 3 None in
  let cfg =
    {
      (SMR.Deployment.default_config ~make_service:(fun id ->
           let s = Psmr_app.Linked_list.create ~initial_size:100 in
           services.(id) <- Some s;
           s)
         ()) with
      clients = 2;
      mode = Parallel { impl = Psmr_cos.Registry.Lockfree; workers = 4 };
      abcast =
        {
          Psmr_broadcast.Abcast.batch_max = 32;
          batch_delay = 1e-3;
          heartbeat_interval = 10e-3;
          election_timeout = 120e-3;
          checkpoint_interval = 128;
        };
      client_timeout = 0.3;
    }
  in
  let d = SMR.Deployment.create cfg in
  SMR.Deployment.start d;
  let ops_per_client = 200 in
  let results = Array.make 2 (0, 0) in
  let client_thread ci =
    Thread.create
      (fun () ->
        let c = SMR.Deployment.client d ci in
        let rng = Psmr_util.Rng.create ~seed:(Int64.of_int (100 + ci)) in
        let hits = ref 0 and added = ref 0 in
        for i = 1 to ops_per_client do
          let target = Psmr_util.Rng.int rng 300 in
          let cmd =
            if Psmr_util.Rng.below_percent rng 20.0 then
              Psmr_app.Linked_list.Add target
            else Psmr_app.Linked_list.Contains target
          in
          (match (cmd, SMR.call c cmd) with
          | Psmr_app.Linked_list.Contains _, Some true -> incr hits
          | Psmr_app.Linked_list.Add _, Some true -> incr added
          | _, Some false -> ()
          | _, None -> failwith "deployment shut down mid-run");
          (* Client 0 crashes the leader a third of the way through. *)
          if ci = 0 && i = ops_per_client / 3 then begin
            Printf.printf "[client %d] crashing replica 0 (the leader)...\n%!" ci;
            SMR.Deployment.crash_replica d 0
          end
        done;
        results.(ci) <- (!hits, !added))
      ()
  in
  let t0 = client_thread 0 and t1 = client_thread 1 in
  Thread.join t0;
  Thread.join t1;
  Array.iteri
    (fun ci (hits, added) ->
      Printf.printf "[client %d] %d ops: %d successful contains, %d new entries\n"
        ci ops_per_client hits added)
    results;
  Printf.printf "view after failover: replica1=%d replica2=%d (0 = never changed)\n"
    (SMR.Deployment.replica_view d 1)
    (SMR.Deployment.replica_view d 2);
  (match (services.(1), services.(2)) with
  | Some s1, Some s2 ->
      Printf.printf "surviving replicas converged: %b (sizes %d and %d)\n"
        (Psmr_app.Linked_list.size s1 = Psmr_app.Linked_list.size s2)
        (Psmr_app.Linked_list.size s1)
        (Psmr_app.Linked_list.size s2)
  | _ -> ());
  SMR.Deployment.shutdown d
